"""JSON request/response schemas of the TopRR serving layer.

Every endpoint speaks plain JSON.  Parsing is strict — unknown shapes and
out-of-domain values raise :class:`~repro.exceptions.InvalidParameterError`,
which the server maps to a 400 response — and the *result* half of a solve
response is deliberately deterministic: it contains only solver outputs
(vertices, thresholds, weights, volume), never timings or cache state, so
two replicas answering the same query can be compared byte-for-byte.  The
volatile half (latency, cache/coalescing flags) lives under ``"served"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.toprr import TopRRResult
from repro.exceptions import InvalidParameterError
from repro.geometry.polytope import ConvexPolytope
from repro.preference.region import PreferenceRegion
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def region_from_spec(
    spec, n_attributes: int, tol: Tolerance = DEFAULT_TOL
) -> PreferenceRegion:
    """Build a :class:`PreferenceRegion` from its JSON specification.

    Two shapes are accepted:

    * ``{"intervals": [[lo, hi], ...]}`` — an axis-aligned hyper-rectangle
      in the reduced ``(d-1)``-dimensional preference space (the region
      shape of the paper's experiments); exactly ``d - 1`` intervals.
    * ``{"A": [[...]], "b": [...]}`` — an arbitrary halfspace system
      ``A w' <= b`` over the reduced space.
    """
    if not isinstance(spec, dict):
        raise InvalidParameterError(
            "region must be an object with 'intervals' or 'A'/'b' keys"
        )
    if "intervals" in spec:
        intervals = spec["intervals"]
        if len(intervals) != n_attributes - 1:
            raise InvalidParameterError(
                f"region intervals cover {len(intervals)} reduced axes but the "
                f"dataset has {n_attributes} attributes (needs {n_attributes - 1})"
            )
        return PreferenceRegion.hyperrectangle(
            [(float(lo), float(hi)) for lo, hi in intervals], tol=tol
        )
    if "A" in spec and "b" in spec:
        A = np.asarray(spec["A"], dtype=float)
        b = np.asarray(spec["b"], dtype=float)
        if A.ndim != 2 or A.shape[1] != n_attributes - 1:
            raise InvalidParameterError(
                f"region halfspace matrix must be (m, {n_attributes - 1}), "
                f"got {A.shape}"
            )
        return PreferenceRegion(
            ConvexPolytope(A, b, tol=tol), n_attributes=n_attributes, tol=tol
        )
    raise InvalidParameterError(
        "region must carry either 'intervals' or both 'A' and 'b'"
    )


def _require_positive_int(payload: dict, key: str) -> int:
    """``payload[key]`` as a positive int, with a route-friendly error."""
    try:
        value = int(payload[key])
    except (KeyError, TypeError, ValueError):
        raise InvalidParameterError(f"request needs an integer {key!r} field") from None
    if value <= 0:
        raise InvalidParameterError(f"{key!r} must be positive, got {value}")
    return value


@dataclass
class SolveRequest:
    """One ``/solve`` request: a ``(k, region)`` query plus serving options."""

    k: int
    region_spec: dict
    dataset: Optional[str] = None
    method: Optional[str] = None
    use_cache: bool = True

    @classmethod
    def parse(cls, payload: dict) -> "SolveRequest":
        """Validate and parse one solve payload."""
        if not isinstance(payload, dict):
            raise InvalidParameterError("solve request body must be a JSON object")
        k = _require_positive_int(payload, "k")
        region_spec = payload.get("region")
        if region_spec is None:
            raise InvalidParameterError("request needs a 'region' field")
        method = payload.get("method")
        if method is not None and not isinstance(method, str):
            raise InvalidParameterError("'method' must be a solver name string")
        return cls(
            k=k,
            region_spec=region_spec,
            dataset=payload.get("dataset"),
            method=method,
            use_cache=bool(payload.get("use_cache", True)),
        )

    def region(self, n_attributes: int, tol: Tolerance = DEFAULT_TOL) -> PreferenceRegion:
        """The parsed preference region for a ``d``-attribute dataset."""
        return region_from_spec(self.region_spec, n_attributes, tol=tol)


@dataclass
class BatchRequest:
    """One ``/batch`` request: several solve queries against one dataset."""

    queries: List[SolveRequest] = field(default_factory=list)
    dataset: Optional[str] = None

    @classmethod
    def parse(cls, payload: dict) -> "BatchRequest":
        """Validate and parse one batch payload."""
        if not isinstance(payload, dict) or not isinstance(payload.get("queries"), list):
            raise InvalidParameterError(
                "batch request body must be an object with a 'queries' list"
            )
        if not payload["queries"]:
            raise InvalidParameterError("batch request needs at least one query")
        dataset = payload.get("dataset")
        queries = [SolveRequest.parse(entry) for entry in payload["queries"]]
        for query in queries:
            query.dataset = query.dataset or dataset
        return cls(queries=queries, dataset=dataset)


@dataclass
class MutateRequest:
    """One ``/mutate`` request: streaming inserts and/or deletes.

    ``insert`` carries ``{"values": [[...]], "option_ids": [...]?}``;
    ``delete`` carries ``{"option_ids": [...]}`` or ``{"positions": [...]}``.
    When both are present the insert is applied first, then the delete —
    each step produces one :class:`~repro.core.mutation.MutationDelta`
    maintained incrementally by the engine.
    """

    dataset: Optional[str] = None
    insert_values: Optional[np.ndarray] = None
    insert_ids: Optional[list] = None
    delete_ids: Optional[list] = None
    delete_positions: Optional[list] = None

    @classmethod
    def parse(cls, payload: dict) -> "MutateRequest":
        """Validate and parse one mutate payload."""
        if not isinstance(payload, dict):
            raise InvalidParameterError("mutate request body must be a JSON object")
        insert = payload.get("insert")
        delete = payload.get("delete")
        if insert is None and delete is None:
            raise InvalidParameterError(
                "mutate request needs an 'insert' and/or 'delete' section"
            )
        request = cls(dataset=payload.get("dataset"))
        if insert is not None:
            if not isinstance(insert, dict) or "values" not in insert:
                raise InvalidParameterError("'insert' must be an object with 'values'")
            request.insert_values = np.atleast_2d(
                np.asarray(insert["values"], dtype=float)
            )
            request.insert_ids = insert.get("option_ids")
        if delete is not None:
            if not isinstance(delete, dict):
                raise InvalidParameterError(
                    "'delete' must be an object with 'option_ids' or 'positions'"
                )
            request.delete_ids = delete.get("option_ids")
            request.delete_positions = delete.get("positions")
            if (request.delete_ids is None) == (request.delete_positions is None):
                raise InvalidParameterError(
                    "'delete' needs exactly one of 'option_ids' / 'positions'"
                )
        return request


def result_payload(result: TopRRResult) -> dict:
    """The deterministic half of a solve response.

    Only solver outputs appear here — JSON float serialisation is exact for
    finite float64, so two replicas (e.g. a warm original and a
    snapshot-restored one) answering the same query produce *identical*
    payload bytes.  Timings, cache flags and other per-serving state belong
    in the response's ``"served"`` section instead.
    """
    return {
        "k": int(result.k),
        "method": result.method,
        "n_filtered": int(result.filtered.n_options),
        "n_vertices": int(result.n_vertices),
        "is_empty": bool(result.is_empty()),
        "volume": float(result.volume()),
        "vertices_reduced": result.vertices_reduced.tolist(),
        "thresholds": result.thresholds.tolist(),
        "full_weights": result.full_weights.tolist(),
    }
