"""Per-dataset engine registry, solve coalescing, and mutate/solve exclusion.

One serving replica fronts one or more datasets, each bound to its own
engine (:class:`~repro.engine.engine.TopRREngine` or
:class:`~repro.engine.sharded.ShardedEngine`).  The registry wraps each in a
:class:`ServedDataset` carrying the concurrency machinery the engines
themselves don't need in library use:

* an **async reader-writer lock** — solves take the read side and run
  concurrently; a ``/mutate`` takes the write side, so it never interleaves
  with an in-flight solve (the engines' ``apply_delta`` rebinding is not
  atomic with respect to a concurrent ``query``), and writers are preferred
  so a mutation cannot starve behind a steady solve stream;
* a **request coalescer** — concurrent identical ``(k, region fingerprint,
  method)`` solves share one underlying engine call: the first request
  computes, followers await a shielded reference to the same future and are
  counted in the metrics as coalesced;
* bounded **latency/requests accounting** surfaced by ``/metrics``.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from contextlib import asynccontextmanager
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InvalidParameterError


class AsyncReadWriteLock:
    """A writer-preferring reader-writer lock for one asyncio event loop.

    Many readers may hold the lock concurrently; a writer holds it alone.
    Once a writer is waiting, new readers queue behind it — mutations are
    rare and must not starve behind a continuous stream of solves.
    """

    def __init__(self):
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @asynccontextmanager
    async def read(self):
        """Hold the shared (solve) side for the duration of the block."""
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        """Hold the exclusive (mutate) side for the duration of the block."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class ServedDataset:
    """One dataset-and-engine pair plus its serving-side state."""

    #: Bound on the per-dataset latency ring buffer (newest wins).
    LATENCY_WINDOW = 2048

    def __init__(self, name: str, engine):
        self.name = name
        self.engine = engine
        self.lock = AsyncReadWriteLock()
        #: In-flight solves keyed by ``(k, fingerprint, method)`` — the
        #: coalescing table.  Touched only from the event loop thread.
        self.inflight: Dict[tuple, asyncio.Future] = {}
        self.n_coalesced = 0
        self.n_requests: Dict[str, int] = {"solve": 0, "batch": 0, "mutate": 0}
        self.n_cache_hits = 0
        self._latencies: deque = deque(maxlen=self.LATENCY_WINDOW)
        self._metrics_lock = threading.Lock()

    # -------------------------------------------------------------- #
    # coalescing
    # -------------------------------------------------------------- #
    async def coalesced_solve(self, key: tuple, thunk) -> Tuple[object, bool]:
        """Run ``thunk()`` once per concurrent identical key.

        The first caller for ``key`` owns the solve; callers arriving while
        it is in flight await the same future (shielded, so one impatient
        client disconnecting cannot cancel everyone's solve) and report
        ``coalesced=True``.  The table entry is removed the moment the solve
        resolves — later identical requests hit the engine's result cache
        instead.
        """
        existing = self.inflight.get(key)
        if existing is not None:
            self.n_coalesced += 1
            return await asyncio.shield(existing), True
        future = asyncio.ensure_future(thunk())
        self.inflight[key] = future
        try:
            return await asyncio.shield(future), False
        finally:
            if self.inflight.get(key) is future:
                del self.inflight[key]

    # -------------------------------------------------------------- #
    # metrics
    # -------------------------------------------------------------- #
    def record(self, route: str, seconds: Optional[float] = None, cache_hit: bool = False) -> None:
        """Fold one served request into the counters."""
        with self._metrics_lock:
            self.n_requests[route] = self.n_requests.get(route, 0) + 1
            if cache_hit:
                self.n_cache_hits += 1
            if seconds is not None:
                self._latencies.append(seconds)

    def metrics(self) -> dict:
        """The ``/metrics`` payload for this dataset (never raises on fresh state)."""
        with self._metrics_lock:
            latencies = sorted(self._latencies)
            requests = dict(self.n_requests)
            n_cache_hits = self.n_cache_hits
            n_coalesced = self.n_coalesced

        def percentile(fraction: float) -> float:
            if not latencies:
                return 0.0
            index = min(len(latencies) - 1, int(fraction * len(latencies)))
            return latencies[index]

        return {
            "dataset": {
                "name": self.engine.dataset.name,
                "n_options": int(self.engine.dataset.n_options),
                "n_attributes": int(self.engine.dataset.n_attributes),
                "version": int(self.engine.dataset.version),
            },
            "requests": requests,
            "n_coalesced": n_coalesced,
            "n_result_cache_hits": n_cache_hits,
            "latency": {
                "count": len(latencies),
                "p50_ms": percentile(0.50) * 1000.0,
                "p99_ms": percentile(0.99) * 1000.0,
            },
            "cache": self.engine.cache_info(),
        }


class EngineRegistry:
    """Name → :class:`ServedDataset` lookup with a default dataset.

    The first registered dataset is the default: requests that omit the
    ``"dataset"`` field are routed to it, so single-dataset deployments
    (the common case) never name anything.
    """

    def __init__(self):
        self._entries: Dict[str, ServedDataset] = {}
        self._default: Optional[str] = None

    def add(self, name: str, engine) -> ServedDataset:
        """Register ``engine`` under ``name``; returns its serving wrapper."""
        if name in self._entries:
            raise InvalidParameterError(f"dataset {name!r} is already registered")
        entry = ServedDataset(name, engine)
        self._entries[name] = entry
        if self._default is None:
            self._default = name
        return entry

    def get(self, name: Optional[str] = None) -> ServedDataset:
        """The entry for ``name`` (or the default); unknown names raise."""
        if name is None:
            if self._default is None:
                raise InvalidParameterError("no dataset is registered")
            name = self._default
        try:
            return self._entries[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown dataset {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        """Registered dataset names, default first."""
        names = sorted(self._entries)
        if self._default in names:
            names.remove(self._default)
            names.insert(0, self._default)
        return names

    def entries(self) -> List[ServedDataset]:
        """Every registered entry, default first."""
        return [self._entries[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._entries)
