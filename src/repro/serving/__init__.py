"""TopRR as a service: an asyncio HTTP front end over the query engines.

The package turns the session-scoped engines
(:class:`~repro.engine.engine.TopRREngine`,
:class:`~repro.engine.sharded.ShardedEngine`) into a long-lived replica:

* :mod:`repro.serving.schemas` — JSON request/response schemas shared by
  the server, the CLI and the benchmark clients;
* :mod:`repro.serving.registry` — the per-dataset engine registry, the
  async reader-writer lock serialising mutations against in-flight solves,
  and the request coalescer that lets concurrent identical ``(k, region)``
  queries share one solve;
* :mod:`repro.serving.server` — the stdlib-only asyncio HTTP/1.1 server
  (``/solve``, ``/batch``, ``/mutate``, ``/health``, ``/metrics``) plus a
  thread-hosted harness used by the tests and benchmarks.

Durability comes from the engine snapshot format
(:mod:`repro.core.serialization`): ``toprr serve --snapshot`` restores a
persisted cache state on boot, so a restarted replica answers its recorded
query mix byte-identically with first-query cache hits.
"""

from repro.serving.registry import EngineRegistry, ServedDataset
from repro.serving.schemas import (
    BatchRequest,
    MutateRequest,
    SolveRequest,
    region_from_spec,
    result_payload,
)
from repro.serving.server import ToprrServer, request_json, start_server_thread

__all__ = [
    "BatchRequest",
    "EngineRegistry",
    "MutateRequest",
    "ServedDataset",
    "SolveRequest",
    "ToprrServer",
    "region_from_spec",
    "request_json",
    "result_payload",
    "start_server_thread",
]
