"""k-onion layers (Chang et al., SIGMOD 2000).

The onion technique peels convex-hull layers off the dataset: layer 1 is the
convex hull of all options, layer 2 the hull of what remains, and so on.  The
union of the first ``k`` layers is guaranteed to contain the top-k result of
any linear scoring function, so it is the second general-purpose pre-filter
the paper compares against in Section 6.3 / Figure 8.

Only the "upper" hull matters for maximisation queries with non-negative
weights, but for faithfulness to the original onion definition we keep full
hull layers (the paper's comparison point behaves the same way: both onion
and k-skyband ignore the preference region and therefore retain many more
options than the r-skyband).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError


def _hull_vertex_indices(points: np.ndarray) -> np.ndarray:
    """Indices of the convex-hull vertices of ``points`` (robust to degeneracy)."""
    n, dim = points.shape
    if n <= dim + 1:
        return np.arange(n)
    try:
        hull = ConvexHull(points)
        return np.unique(hull.vertices)
    except QhullError:
        # Degenerate (e.g. co-planar) point sets: fall back to the joggled hull,
        # and if that also fails treat every remaining point as a hull vertex.
        try:
            hull = ConvexHull(points, qhull_options="QJ")
            return np.unique(hull.vertices)
        except QhullError:
            return np.arange(n)


def k_onion_layers(dataset: Dataset, k: int) -> np.ndarray:
    """Positional indices of the options in the first ``k`` convex-hull layers."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    values = dataset.values
    remaining = np.arange(dataset.n_options)
    selected: list[np.ndarray] = []
    for _ in range(k):
        if remaining.size == 0:
            break
        local_hull = _hull_vertex_indices(values[remaining])
        layer = remaining[local_hull]
        selected.append(layer)
        remaining = np.setdiff1d(remaining, layer, assume_unique=True)
    if not selected:
        return np.empty(0, dtype=int)
    return np.sort(np.concatenate(selected))


def onion_layer_assignment(dataset: Dataset, max_layers: int | None = None) -> np.ndarray:
    """Layer number (1-based) of every option; options beyond ``max_layers`` get 0."""
    values = dataset.values
    n = dataset.n_options
    layers = np.zeros(n, dtype=int)
    remaining = np.arange(n)
    layer_number = 0
    while remaining.size > 0:
        layer_number += 1
        if max_layers is not None and layer_number > max_layers:
            break
        local_hull = _hull_vertex_indices(values[remaining])
        layer = remaining[local_hull]
        layers[layer] = layer_number
        remaining = np.setdiff1d(remaining, layer, assume_unique=True)
    return layers
