"""Linear scoring functions ``S_w(p) = w . p``.

The paper (like most of the top-k literature) uses linear scoring with a
normalised weight vector.  This module provides the vectorised primitives
that every higher layer builds on, plus helpers for working with the reduced
preference-space parameterisation where the last weight is implicit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError


def linear_scores(values: np.ndarray, weight: Sequence[float]) -> np.ndarray:
    """Scores of all rows of ``values`` under the full weight vector ``weight``."""
    values = np.asarray(values, dtype=float)
    weight = np.asarray(weight, dtype=float)
    if values.ndim != 2 or weight.ndim != 1 or values.shape[1] != weight.shape[0]:
        raise DimensionMismatchError(
            f"incompatible shapes for scoring: values {values.shape}, weight {weight.shape}"
        )
    return values @ weight


def linear_scores_many(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Score matrix ``(n_options, n_weights)`` for several full weight vectors."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape[1] != weights.shape[1]:
        raise DimensionMismatchError(
            f"incompatible shapes for scoring: values {values.shape}, weights {weights.shape}"
        )
    return values @ weights.T


def score_difference_affine(p_i: np.ndarray, p_j: np.ndarray) -> tuple[np.ndarray, float]:
    """Affine form of ``S_w(p_i) - S_w(p_j)`` over the *reduced* preference space.

    With the last weight eliminated (``w[d-1] = 1 - sum of the others``) the
    score of an option ``p`` becomes the affine function
    ``p[d-1] + sum_j w[j] * (p[j] - p[d-1])`` of the reduced weight vector.
    The difference of two such forms is returned as ``(coefficients, constant)``
    so that ``S_w(p_i) - S_w(p_j) = coefficients . w_reduced + constant``.
    This is exactly the hyperplane ``wHP(p_i, p_j)`` of the paper.
    """
    p_i = np.asarray(p_i, dtype=float)
    p_j = np.asarray(p_j, dtype=float)
    if p_i.shape != p_j.shape or p_i.ndim != 1:
        raise DimensionMismatchError("options must be 1-D vectors of equal length")
    diff = p_i - p_j
    constant = float(diff[-1])
    coefficients = diff[:-1] - constant
    return coefficients, constant
