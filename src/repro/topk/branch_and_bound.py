"""Branch-and-bound top-k over an R-tree (Tao et al. [42]).

The paper lists the branch-and-bound paradigm on spatially indexed options as
one of the two standard top-k processing approaches (Section 2).  The
algorithm traverses the R-tree best-first by the maximum score achievable
inside each node's bounding box; because that bound never underestimates the
score of any contained point, the first ``k`` points popped from the queue
are exactly the top-k.

The module also exposes :func:`incremental_top` which keeps yielding options
in decreasing score order past ``k`` — the building block the UTK-style
anchor selection and the maximum-rank query use to look "one rank deeper"
without recomputing anything.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.index.rtree import RTree
from repro.topk.query import TopKResult


def _resolve_tree(dataset: Dataset, tree: Optional[RTree]) -> RTree:
    if tree is None:
        return RTree(dataset.values)
    if tree.n_points != dataset.n_options or tree.dimension != dataset.n_attributes:
        raise InvalidParameterError("the provided R-tree does not index this dataset")
    return tree


def incremental_top(
    dataset: Dataset,
    weight: Sequence[float],
    tree: Optional[RTree] = None,
) -> Iterator[Tuple[float, int]]:
    """Yield ``(score, option_index)`` in decreasing score order, lazily.

    Ties are broken by ascending option index to match
    :func:`repro.topk.query.top_k` exactly, which the cross-check tests rely
    on.
    """
    weight = np.asarray(weight, dtype=float)
    if weight.shape != (dataset.n_attributes,):
        raise InvalidParameterError(
            f"weight must have {dataset.n_attributes} components, got {weight.shape}"
        )
    if np.any(weight < 0):
        raise InvalidParameterError(
            "branch-and-bound scoring bounds require a non-negative weight vector"
        )
    tree = _resolve_tree(dataset, tree)

    # The best-first traversal orders by score only; buffer ties so that the
    # (score desc, index asc) order matches the exact reference implementation.
    pending: list[Tuple[float, int]] = []
    for score, index in tree.best_first(
        node_key=lambda box: box.max_score(weight),
        point_key=lambda point: float(point @ weight),
    ):
        if pending and not np.isclose(score, pending[0][0], rtol=0.0, atol=1e-12):
            pending.sort(key=lambda item: item[1])
            for item in pending:
                yield item
            pending = []
        pending.append((score, index))
    pending.sort(key=lambda item: item[1])
    for item in pending:
        yield item


def branch_and_bound_top_k(
    dataset: Dataset,
    weight: Sequence[float],
    k: int,
    tree: Optional[RTree] = None,
) -> TopKResult:
    """Top-k of ``dataset`` under ``weight`` via best-first R-tree traversal.

    Returns the same :class:`~repro.topk.query.TopKResult` as the exact
    brute-force :func:`repro.topk.query.top_k`, including its deterministic
    tie-breaking, so the two are interchangeable.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    k = min(int(k), dataset.n_options)
    indices = np.empty(k, dtype=int)
    scores = np.empty(k, dtype=float)
    produced = 0
    for score, index in incremental_top(dataset, weight, tree=tree):
        indices[produced] = index
        scores[produced] = score
        produced += 1
        if produced == k:
            break
    return TopKResult(indices=indices, scores=scores, threshold=float(scores[-1]))


def node_access_count(
    dataset: Dataset,
    weight: Sequence[float],
    k: int,
    tree: Optional[RTree] = None,
) -> int:
    """Number of R-tree nodes whose box bound exceeds the final k-th score.

    A simple I/O-style cost measure: branch-and-bound must open every node
    whose upper bound is above the answer threshold, and can prune the rest.
    Used by the substrate benchmarks to show the pruning benefit over a full
    scan.
    """
    tree = _resolve_tree(dataset, tree)
    weight = np.asarray(weight, dtype=float)
    threshold = branch_and_bound_top_k(dataset, weight, k, tree=tree).threshold
    return sum(1 for node in tree.iter_nodes() if node.box.max_score(weight) >= threshold)
