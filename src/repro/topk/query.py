"""Exact top-k queries with deterministic tie-breaking.

``top_k`` returns the k highest-scoring options for a full weight vector.
Ties are broken by option index (ascending), which makes the kIPR tests of
the TopRR algorithms deterministic even when a splitting hyperplane passes
exactly through a region vertex (where two options score identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.topk.scoring import linear_scores


@dataclass(frozen=True)
class TopKResult:
    """Result of a top-k query.

    Attributes
    ----------
    indices:
        Positional indices of the top-k options, sorted by decreasing score
        (ties broken by ascending index).
    scores:
        Scores of those options, aligned with ``indices``.
    threshold:
        The k-th highest score, i.e. ``TopK(w)`` in the paper's notation.
    """

    indices: np.ndarray
    scores: np.ndarray
    threshold: float

    @property
    def kth_index(self) -> int:
        """Positional index of the top-k-th option."""
        return int(self.indices[-1])

    @property
    def index_set(self) -> frozenset:
        """Order-insensitive top-k set (frozen for hashing / comparison)."""
        return frozenset(int(i) for i in self.indices)


def _ordered_top_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k best scores, sorted by (-score, index).

    For large inputs an ``argpartition`` pre-selection keeps the sort cheap;
    the candidate pool is widened to include every option tied with the
    provisional k-th score so that the final ordering (and hence the k-th
    option) is identical to a full deterministic sort.
    """
    n = scores.shape[0]
    if k >= n or n <= 4096:
        return np.lexsort((np.arange(n), -scores))[:k]
    candidate = np.argpartition(-scores, k - 1)[:k]
    provisional_kth = np.min(scores[candidate])
    pool = np.flatnonzero(scores >= provisional_kth)
    pool = pool[np.lexsort((pool, -scores[pool]))]
    return pool[:k]


def top_k(dataset: Dataset, weight: Sequence[float], k: int) -> TopKResult:
    """The top-k options of ``dataset`` for the full weight vector ``weight``."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    k = min(int(k), dataset.n_options)
    scores = linear_scores(dataset.values, weight)
    order = _ordered_top_indices(scores, k)[:k]
    return TopKResult(indices=order, scores=scores[order], threshold=float(scores[order[-1]]))


def top_k_score(dataset: Dataset, weight: Sequence[float], k: int) -> float:
    """``TopK(w)``: the k-th highest score in the dataset under ``weight``."""
    return top_k(dataset, weight, k).threshold


def top_k_from_scores(scores: np.ndarray, k: int) -> TopKResult:
    """Top-k computation when the score vector has already been materialised."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    scores = np.asarray(scores, dtype=float)
    k = min(int(k), scores.shape[0])
    order = _ordered_top_indices(scores, k)[:k]
    return TopKResult(indices=order, scores=scores[order], threshold=float(scores[order[-1]]))


def rank_of(dataset: Dataset, weight: Sequence[float], option: Sequence[float]) -> int:
    """1-based rank a hypothetical ``option`` would obtain in ``dataset`` under ``weight``.

    An existing option with the same score does *not* push the hypothetical
    option down (ties count in the new option's favour, consistent with the
    paper's ``>=`` in Definition 2).
    """
    scores = linear_scores(dataset.values, weight)
    own_score = float(np.dot(np.asarray(option, dtype=float), np.asarray(weight, dtype=float)))
    return int(np.count_nonzero(scores > own_score)) + 1
