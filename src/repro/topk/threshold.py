"""Threshold-based top-k over per-attribute sorted lists (Fagin et al. [17]).

The other standard top-k processing approach the paper cites (besides
branch-and-bound on a spatial index) keeps one list per attribute, sorted by
that attribute in decreasing order, and merges them:

* **TA** (Threshold Algorithm) performs sorted access round-robin over the
  lists, looks up the full record of every option it encounters (random
  access), and stops once the k best scores seen so far are all at least the
  *threshold* — the score of a hypothetical option whose every attribute
  equals the current sorted-access depth.
* **NRA** (No Random Access) never looks up full records; it maintains lower
  and upper score bounds per partially seen option and stops when the k best
  lower bounds dominate every other option's upper bound.

Both return exactly the same result as the exact reference
:func:`repro.topk.query.top_k` (including its deterministic tie-breaking) so
they are interchangeable; the access counts they report are used by the
substrate benchmarks to show how early termination depends on the weight
vector and the data distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.topk.query import TopKResult, top_k_from_scores


@dataclass
class SortedListIndex:
    """Per-attribute sorted lists over a dataset.

    One list per attribute, each holding the option indices sorted by that
    attribute in decreasing order.  Built once, reused by every TA / NRA
    query against the same dataset.
    """

    orders: np.ndarray
    values: np.ndarray

    @classmethod
    def build(cls, dataset: Dataset) -> "SortedListIndex":
        """Sort every attribute column of ``dataset`` in decreasing order."""
        values = dataset.values
        orders = np.argsort(-values, axis=0, kind="stable")
        return cls(orders=orders, values=values)

    @property
    def n_options(self) -> int:
        """Number of indexed options."""
        return int(self.values.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of attributes (sorted lists)."""
        return int(self.values.shape[1])


@dataclass
class AccessStatistics:
    """Sorted / random access counters reported by TA and NRA."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    depth: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


def _validate(dataset: Dataset, weight: Sequence[float], k: int) -> np.ndarray:
    weight = np.asarray(weight, dtype=float)
    if weight.shape != (dataset.n_attributes,):
        raise InvalidParameterError(
            f"weight must have {dataset.n_attributes} components, got {weight.shape}"
        )
    if np.any(weight < 0):
        raise InvalidParameterError("threshold algorithms require non-negative weights")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    return weight


def threshold_algorithm(
    dataset: Dataset,
    weight: Sequence[float],
    k: int,
    index: Optional[SortedListIndex] = None,
    stats: Optional[AccessStatistics] = None,
) -> TopKResult:
    """Fagin's TA: sorted access round-robin plus random access, early stop at the threshold.

    Parameters
    ----------
    dataset:
        The option dataset.
    weight:
        Full (non-negative) weight vector.
    k:
        Number of results.
    index:
        Pre-built :class:`SortedListIndex` (built on demand when omitted).
    stats:
        Optional accumulator for access counts.
    """
    weight = _validate(dataset, weight, k)
    k = min(int(k), dataset.n_options)
    index = index if index is not None else SortedListIndex.build(dataset)
    stats = stats if stats is not None else AccessStatistics()

    values = index.values
    scores: Dict[int, float] = {}
    n, d = values.shape

    for depth in range(n):
        stats.depth = depth + 1
        frontier = np.empty(d)
        for attribute in range(d):
            option = int(index.orders[depth, attribute])
            frontier[attribute] = values[option, attribute]
            stats.sorted_accesses += 1
            if option not in scores:
                # Random access: fetch the full record and score it.
                scores[option] = float(values[option] @ weight)
                stats.random_accesses += 1
        threshold = float(frontier @ weight)
        if len(scores) >= k:
            kth_best = sorted(scores.values(), reverse=True)[k - 1]
            if kth_best >= threshold:
                break

    seen = np.fromiter(scores.keys(), dtype=int, count=len(scores))
    seen_scores = np.fromiter(scores.values(), dtype=float, count=len(scores))
    local = top_k_from_scores(seen_scores, k)
    indices = seen[local.indices]
    # Re-apply the global (score desc, index asc) tie-break on the winners so
    # the result is bit-identical to the exact reference implementation.
    order = np.lexsort((indices, -seen_scores[local.indices]))
    indices = indices[order]
    final_scores = seen_scores[local.indices][order]
    return TopKResult(indices=indices, scores=final_scores, threshold=float(final_scores[-1]))


def no_random_access_algorithm(
    dataset: Dataset,
    weight: Sequence[float],
    k: int,
    index: Optional[SortedListIndex] = None,
    stats: Optional[AccessStatistics] = None,
) -> TopKResult:
    """Fagin's NRA: sorted access only, maintaining per-option score bounds.

    NRA guarantees the correct top-k *set*; the scores of partially seen
    winners are completed with one final lookup per winner so that the
    returned :class:`~repro.topk.query.TopKResult` carries exact scores and
    matches the reference implementation's ordering.
    """
    weight = _validate(dataset, weight, k)
    k = min(int(k), dataset.n_options)
    index = index if index is not None else SortedListIndex.build(dataset)
    stats = stats if stats is not None else AccessStatistics()

    values = index.values
    n, d = values.shape
    # lower[i]: weighted sum of the attributes of option i seen so far.
    # seen_mask[i, j]: attribute j of option i has been seen via sorted access.
    lower = np.zeros(n)
    seen_mask = np.zeros((n, d), dtype=bool)
    encountered = np.zeros(n, dtype=bool)

    for depth in range(n):
        stats.depth = depth + 1
        frontier = np.empty(d)
        for attribute in range(d):
            option = int(index.orders[depth, attribute])
            value = values[option, attribute]
            frontier[attribute] = value
            stats.sorted_accesses += 1
            if not seen_mask[option, attribute]:
                seen_mask[option, attribute] = True
                lower[option] += weight[attribute] * value
                encountered[option] = True

        if np.count_nonzero(encountered) < k:
            continue
        # Upper bound: seen part exactly, unseen attributes bounded by the
        # current frontier value of their list.
        unseen_bonus = (~seen_mask) * (weight[None, :] * frontier[None, :])
        upper = lower + unseen_bonus.sum(axis=1)
        candidate_indices = np.flatnonzero(encountered)
        candidate_lower = lower[candidate_indices]
        top_candidates = candidate_indices[
            np.lexsort((candidate_indices, -candidate_lower))[:k]
        ]
        kth_lower = lower[top_candidates].min()
        others = np.ones(n, dtype=bool)
        others[top_candidates] = False
        if not np.any(others) or kth_lower >= upper[others].max():
            break

    exact_scores = values @ weight
    # Restrict to encountered options (NRA never needs to look at the rest).
    restricted = np.where(encountered, exact_scores, -np.inf)
    return top_k_from_scores(restricted, k)
