"""Top-k query substrate.

Scoring, exact top-k retrieval, k-skybands, onion layers, and the two
classical processing strategies the paper cites (Section 2): branch-and-bound
over a spatial index and threshold merging over sorted lists.
"""

from repro.topk.query import TopKResult, top_k, top_k_score, rank_of
from repro.topk.scoring import linear_scores
from repro.topk.skyband import k_skyband, dominance_count
from repro.topk.onion import k_onion_layers
from repro.topk.branch_and_bound import branch_and_bound_top_k, incremental_top
from repro.topk.threshold import (
    AccessStatistics,
    SortedListIndex,
    no_random_access_algorithm,
    threshold_algorithm,
)

__all__ = [
    "TopKResult",
    "top_k",
    "top_k_score",
    "rank_of",
    "linear_scores",
    "k_skyband",
    "dominance_count",
    "k_onion_layers",
    "branch_and_bound_top_k",
    "incremental_top",
    "threshold_algorithm",
    "no_random_access_algorithm",
    "SortedListIndex",
    "AccessStatistics",
]
