"""k-skyband computation (dominance-based filtering).

An option ``p`` *dominates* ``q`` if ``p`` is at least as good in every
attribute and strictly better in at least one.  The k-skyband is the set of
options dominated by fewer than ``k`` others; it is guaranteed to contain the
top-k result for *every* possible weight vector, which is why the paper lists
it as one of the candidate pre-filters for TopRR (Sections 3.4 and 6.3).

The implementation processes options in decreasing attribute-sum order and
counts, for each option, its dominators among the k-skyband found so far.
This is the classic sort-based skyband algorithm: every dominator has a
strictly larger attribute sum (so it has already been processed), and an
option dominated by ``k`` or more options is always dominated by ``k`` or
more *skyband* options (dominators outside the skyband are themselves
dominated by ``k`` skyband options, which dominate the option transitively),
so counting against the skyband alone is exact.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def skyband_of_values(values: np.ndarray, k: int, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Positional indices of the k-skyband of a raw ``(n, d)`` value matrix."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    if n == 0:
        return np.empty(0, dtype=int)

    order = np.argsort(-values.sum(axis=1), kind="stable")
    band_values = np.empty_like(values)
    band_original_indices = np.empty(n, dtype=int)
    band_size = 0
    eps = tol.geometry

    for original_index in order:
        row = values[original_index]
        if band_size == 0:
            dominator_count = 0
        else:
            band = band_values[:band_size]
            geq = np.all(band >= row - eps, axis=1)
            gt = np.any(band > row + eps, axis=1)
            dominator_count = int(np.count_nonzero(geq & gt))
        if dominator_count < k:
            band_values[band_size] = row
            band_original_indices[band_size] = original_index
            band_size += 1

    return np.sort(band_original_indices[:band_size])


def dominance_count(values: np.ndarray, cap: int, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Number of options dominating each row of ``values``, capped at ``cap``.

    Exact up to the cap: the result is ``min(true count, cap)``, which is all
    a k-skyband membership query needs.  Counting is done against the
    ``cap``-skyband only (sufficient, see module docstring), which keeps the
    cost close to linear for realistic data.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    band = skyband_of_values(values, cap, tol=tol)
    band_values = values[band]
    eps = tol.geometry
    block = 4096
    for start in range(0, n, block):
        stop = min(start + block, n)
        chunk = values[start:stop]
        geq = np.all(band_values[None, :, :] >= chunk[:, None, :] - eps, axis=2)
        gt = np.any(band_values[None, :, :] > chunk[:, None, :] + eps, axis=2)
        counts[start:stop] = np.minimum((geq & gt).sum(axis=1), cap)
    return counts


def k_skyband(dataset: Dataset, k: int, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Positional indices of the k-skyband of ``dataset`` (dominated by < k others)."""
    return skyband_of_values(dataset.values, k, tol=tol)


def skyline(dataset: Dataset, tol: Tolerance = DEFAULT_TOL) -> np.ndarray:
    """Positional indices of the skyline (the 1-skyband)."""
    return k_skyband(dataset, 1, tol=tol)
