"""Exception hierarchy used across the TopRR reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DimensionMismatchError(ReproError):
    """Raised when arrays of incompatible dimensionality are combined."""


class EmptyRegionError(ReproError):
    """Raised when an operation requires a non-empty region but got an empty one."""


class DegeneratePolytopeError(ReproError):
    """Raised when a polytope is too degenerate (lower-dimensional) for the operation."""


class InfeasibleProblemError(ReproError):
    """Raised when an optimisation problem (LP/QP) has no feasible point."""


class InvalidParameterError(ReproError):
    """Raised when a user-supplied parameter is out of its valid domain."""


class ShardExecutionError(ReproError):
    """Raised when a shard task stays unrecoverable and serial fallback is disabled.

    The supervised pool (:class:`repro.core.resilient.SupervisedPool`) only
    raises this after walking the whole degradation ladder — retries, pool
    rebuild — with the in-process serial fallback explicitly turned off
    (``--no-fallback``); with the fallback enabled (the default) shard
    failures degrade instead of raising.
    """
