"""Exception hierarchy used across the TopRR reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DimensionMismatchError(ReproError):
    """Raised when arrays of incompatible dimensionality are combined."""


class EmptyRegionError(ReproError):
    """Raised when an operation requires a non-empty region but got an empty one."""


class DegeneratePolytopeError(ReproError):
    """Raised when a polytope is too degenerate (lower-dimensional) for the operation."""


class InfeasibleProblemError(ReproError):
    """Raised when an optimisation problem (LP/QP) has no feasible point."""


class InvalidParameterError(ReproError):
    """Raised when a user-supplied parameter is out of its valid domain."""


class SerializationError(InvalidParameterError):
    """Raised when a serialised document cannot be (safely) reconstructed.

    Covers every refusal of :mod:`repro.core.serialization`: wrong or
    truncated/corrupt payloads, schema versions newer than this library
    reads, legacy documents that no longer carry enough data for an exact
    reconstruction, and engine snapshots whose recorded dataset does not
    match the dataset the restoring engine is bound to.  Loading never
    silently degrades — it either round-trips byte-exactly or raises this.
    Subclasses :class:`InvalidParameterError` so callers that predate the
    split keep catching load failures under the older type.
    """


class EngineClosedError(ReproError):
    """Raised when a closed :class:`~repro.engine.sharded.ShardedEngine` is used.

    ``close()`` shuts the worker pool down for good; a later ``query`` /
    ``apply_delta`` / ``pool_health`` would otherwise silently respawn a
    pool (leaking workers past the caller's lifecycle) or consult dead
    state.  Introspection that needs no pool — ``cache_info``,
    ``clear_caches``, a second ``close()`` — stays usable.
    """


class ShardExecutionError(ReproError):
    """Raised when a shard task stays unrecoverable and serial fallback is disabled.

    The supervised pool (:class:`repro.core.resilient.SupervisedPool`) only
    raises this after walking the whole degradation ladder — retries, pool
    rebuild — with the in-process serial fallback explicitly turned off
    (``--no-fallback``); with the fallback enabled (the default) shard
    failures degrade instead of raising.
    """
