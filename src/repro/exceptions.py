"""Exception hierarchy used across the TopRR reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DimensionMismatchError(ReproError):
    """Raised when arrays of incompatible dimensionality are combined."""


class EmptyRegionError(ReproError):
    """Raised when an operation requires a non-empty region but got an empty one."""


class DegeneratePolytopeError(ReproError):
    """Raised when a polytope is too degenerate (lower-dimensional) for the operation."""


class InfeasibleProblemError(ReproError):
    """Raised when an optimisation problem (LP/QP) has no feasible point."""


class InvalidParameterError(ReproError):
    """Raised when a user-supplied parameter is out of its valid domain."""
