"""TopRR: creating top ranking options in the continuous option and preference space.

This package is a from-scratch reproduction of the VLDB 2019 paper by
Tang, Mouratidis, Yiu and Chen.  It provides:

* the computational-geometry substrate needed by the paper (convex
  polytopes, halfspace intersection, LP/QP helpers),
* the top-k query machinery and the pruning filters evaluated in the paper
  (k-skyband, k-onion layers, r-skyband, UTK),
* the TopRR algorithms themselves: the PAC baseline, TAS, and the optimized
  TAS* with consistent-top pruning (Lemma 5), optimized region testing
  (Lemma 7) and k-switch splitting hyperplane selection,
* cost-optimal option creation / enhancement on top of the TopRR output,
* a session-scoped query engine (:class:`repro.engine.TopRREngine`) that
  binds a dataset once and serves repeated / batched queries with
  cross-query caching,
* an experiment harness regenerating every figure and table of the paper's
  evaluation section.

Quickstart
----------
>>> import numpy as np
>>> from repro import Dataset, PreferenceRegion, solve_toprr
>>> data = Dataset(np.random.default_rng(0).random((1000, 3)))
>>> region = PreferenceRegion.hyperrectangle([(0.2, 0.3), (0.3, 0.4)])
>>> result = solve_toprr(data, k=5, region=region)
>>> bool(result.contains(np.array([0.95, 0.95, 0.95])))
True
"""

from repro.data.dataset import Dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_independent,
)
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.core.toprr import TopRRResult, solve_toprr
from repro.core.tas import TASSolver
from repro.core.tas_star import TASStarSolver
from repro.core.pac import PACSolver
from repro.core.placement import (
    cheapest_enhancement,
    cheapest_new_option,
    smallest_k_within_budget,
)
from repro.core.composite import constrain_result, solve_toprr_union
from repro.core.parallel import solve_toprr_parallel
from repro.core.sharded import solve_toprr_sharded
from repro.core.precompute import PrecomputedTopRR
from repro.core.sampled import sampled_toprr
from repro.engine import ShardedEngine, TopRREngine
from repro.topk.query import top_k, top_k_score
from repro.version import __version__

__all__ = [
    "Dataset",
    "PreferenceRegion",
    "PreferenceSpace",
    "TopRRResult",
    "solve_toprr",
    "TASSolver",
    "TASStarSolver",
    "PACSolver",
    "cheapest_new_option",
    "cheapest_enhancement",
    "smallest_k_within_budget",
    "solve_toprr_union",
    "constrain_result",
    "solve_toprr_parallel",
    "solve_toprr_sharded",
    "PrecomputedTopRR",
    "TopRREngine",
    "ShardedEngine",
    "sampled_toprr",
    "top_k",
    "top_k_score",
    "generate_independent",
    "generate_correlated",
    "generate_anticorrelated",
    "__version__",
]
