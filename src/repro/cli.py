"""Command-line interface.

Examples
--------
List all reproducible experiments::

    toprr list

Run one experiment (Figure 9a at smoke scale) and print its table::

    toprr run fig9a --scale smoke

Solve a single TopRR instance on synthetic data::

    toprr solve --n 5000 --d 4 --k 10 --sigma 0.05 --method "tas*"

Serve a batch of queries against one dataset through the caching engine::

    toprr batch --n 5000 --d 4 --queries 50 --distinct 10

Stream inserts/deletes through a warm engine with incremental cache
maintenance (compare against --flush to see what the maintenance saves)::

    toprr mutate --n 5000 --d 3 --rounds 5 --churn 0.01

Run a serving replica over HTTP, restoring warm caches from a snapshot and
persisting them again on shutdown::

    toprr serve --n 5000 --d 4 --port 8321 \
        --snapshot caches.json --save-snapshot caches.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.core.placement import cheapest_new_option
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_synthetic
from repro.engine import ShardedEngine, TopRREngine
from repro.exceptions import InvalidParameterError
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.config import Scale
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_table, save_csv_rows
from repro.preference.random_regions import random_hypercube_region
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="toprr",
        description="TopRR: creating top ranking options (VLDB 2019 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the reproducible figures and tables")

    run = sub.add_parser("run", help="run one experiment or ablation and print its rows")
    run.add_argument(
        "experiment",
        help=f"experiment id, one of {sorted(EXPERIMENTS) + sorted(ABLATIONS)}",
    )
    run.add_argument("--scale", default="scaled", help="smoke | scaled | paper (default: scaled)")
    run.add_argument("--csv", default=None, help="optional path to save the rows as CSV")

    solve = sub.add_parser("solve", help="solve one TopRR instance on synthetic data")
    solve.add_argument("--n", type=int, default=10_000, help="number of options")
    solve.add_argument("--d", type=int, default=4, help="number of attributes")
    solve.add_argument("--k", type=int, default=10, help="rank requirement k")
    solve.add_argument("--sigma", type=float, default=0.01, help="preference-region side length")
    solve.add_argument("--distribution", default="IND", help="IND | COR | ANTI")
    solve.add_argument("--method", default="tas*", help="tas* | tas | pac")
    solve.add_argument("--seed", type=int, default=7, help="random seed")
    solve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the r-skyband pre-filter over N disjoint option partitions "
        "(process-parallel, bit-identical result; default: unsharded)",
    )
    solve.add_argument(
        "--shard-strategy",
        default="contiguous",
        help="contiguous | hash (default: contiguous); only with --shards",
    )
    solve.add_argument(
        "--shard-executor",
        default="process",
        help="process | serial (default: process); only with --shards",
    )
    solve.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-batch deadline in seconds for pool shard tasks; a task still "
        "running past it counts as hung and is retried on a fresh pool "
        "(default: wait indefinitely); only with --shards",
    )
    solve.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="pool re-submissions allowed per shard task after its first "
        "failure (default: 2); only with --shards",
    )
    solve.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail the query (ShardExecutionError) when a shard stays "
        "unrecoverable, instead of degrading it to serial in-process "
        "execution; only with --shards",
    )

    batch = sub.add_parser(
        "batch",
        help="serve a batch of TopRR queries on one synthetic dataset via the caching engine",
    )
    batch.add_argument("--n", type=int, default=5_000, help="number of options")
    batch.add_argument("--d", type=int, default=4, help="number of attributes")
    batch.add_argument("--k", type=int, default=10, help="largest rank requirement k")
    batch.add_argument("--sigma", type=float, default=0.05, help="preference-region side length")
    batch.add_argument("--distribution", default="IND", help="IND | COR | ANTI")
    batch.add_argument("--method", default="tas*", help="tas* | tas | pac")
    batch.add_argument("--queries", type=int, default=50, help="total queries in the session")
    batch.add_argument(
        "--distinct", type=int, default=10, help="distinct (k, region) pairs in the mix"
    )
    batch.add_argument(
        "--executor",
        default="serial",
        help="serial | thread | process (default: serial); fans out across queries, "
        "but the solve is CPU-bound Python, so 'thread' mostly overlaps cache "
        "lookups rather than scaling it — for CPU-bound scaling on one large "
        "catalogue use --shards, which parallelises inside each query",
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through the sharded engine: the r-skyband pre-filter runs "
        "process-parallel over N option shards per query (ignores --executor)",
    )
    batch.add_argument(
        "--shard-strategy",
        default="contiguous",
        help="contiguous | hash (default: contiguous); only with --shards",
    )
    batch.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-batch deadline in seconds for pool shard tasks "
        "(default: wait indefinitely); only with --shards",
    )
    batch.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="pool re-submissions allowed per shard task after its first "
        "failure (default: 2); only with --shards",
    )
    batch.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of degrading unrecoverable shard tasks to serial "
        "in-process execution; only with --shards",
    )
    batch.add_argument("--seed", type=int, default=7, help="random seed")
    batch.add_argument(
        "--mutate-every",
        type=int,
        default=None,
        help="interleave a random insert/delete mutation after every N queries "
        "(incremental cache maintenance keeps provably valid entries; "
        "default: no mutations)",
    )
    batch.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="fraction of the catalogue touched per interleaved mutation "
        "(default: 0.01); only with --mutate-every",
    )

    mutate = sub.add_parser(
        "mutate",
        help="stream inserts/deletes through a warm engine and report what the "
        "incremental cache maintenance keeps alive",
    )
    mutate.add_argument("--n", type=int, default=5_000, help="number of options")
    mutate.add_argument("--d", type=int, default=3, help="number of attributes")
    mutate.add_argument("--k", type=int, default=8, help="largest rank requirement k")
    mutate.add_argument("--sigma", type=float, default=0.05, help="preference-region side length")
    mutate.add_argument("--distribution", default="IND", help="IND | COR | ANTI")
    mutate.add_argument("--method", default="tas*", help="tas* | tas | pac")
    mutate.add_argument("--distinct", type=int, default=6, help="distinct (k, region) pairs")
    mutate.add_argument("--rounds", type=int, default=5, help="mutation rounds")
    mutate.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="fraction of the catalogue inserted and deleted per round (default: 0.01)",
    )
    mutate.add_argument(
        "--flush",
        action="store_true",
        help="baseline arm: clear every cache on each mutation instead of the "
        "incremental survival test",
    )
    mutate.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through the sharded engine (serial executor); mutations "
        "re-plan the shards automatically",
    )
    mutate.add_argument("--seed", type=int, default=7, help="random seed")

    serve = sub.add_parser(
        "serve",
        help="serve TopRR queries over HTTP (/solve /batch /mutate /health /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321, help="bind port; 0 picks a free one")
    serve.add_argument("--n", type=int, default=5_000, help="number of synthetic options")
    serve.add_argument("--d", type=int, default=4, help="number of attributes")
    serve.add_argument("--distribution", default="IND", help="IND | COR | ANTI")
    serve.add_argument("--method", default="tas*", help="default solver: tas* | tas | pac")
    serve.add_argument("--seed", type=int, default=7, help="random seed")
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through the sharded engine (process-parallel pre-filter)",
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=4,
        help="solver worker threads backing the event loop (default: 4)",
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        help="engine snapshot to restore warm caches from on boot "
        "(must exist; a corrupt or mismatched snapshot fails the boot loudly)",
    )
    serve.add_argument(
        "--save-snapshot",
        default=None,
        help="write the engine's caches to this snapshot path on shutdown",
    )

    return parser


def _churn_step(rng, dataset, fraction):
    """One churn round: insert ~``fraction * n`` rows, delete as many old ones.

    Returns the two ``(dataset, delta)`` steps in application order — each
    delta is applied to an engine together with the dataset it produced.
    Catalogue size is conserved, ids churn.
    """
    count = max(1, int(round(fraction * dataset.n_options)))
    inserted, delta_in = dataset.insert_options(rng.random((count, dataset.n_attributes)))
    victims = rng.choice(dataset.option_ids, size=count, replace=False).tolist()
    mutated, delta_out = inserted.delete_options(option_ids=victims)
    return [(inserted, delta_in), (mutated, delta_out)]


def _command_list() -> int:
    for registry, heading in ((EXPERIMENTS, "paper experiments"), (ABLATIONS, "extension studies")):
        print(f"[{heading}]")
        for name in sorted(registry):
            doc = (registry[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {name:20s}  {summary}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    scale = Scale.parse(args.scale)
    if args.experiment in ABLATIONS:
        rows = run_ablation(args.experiment, scale=scale)
    else:
        rows = run_experiment(args.experiment, scale=scale)
    print(format_table(rows, title=f"{args.experiment} (scale={scale.value})"))
    if args.csv:
        path = save_csv_rows(rows, args.csv)
        print(f"\nsaved {len(rows)} rows to {path}")
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    dataset = generate_synthetic(args.distribution, args.n, args.d, rng=args.seed)
    region = random_hypercube_region(args.d, args.sigma, rng=args.seed + 1)
    result = solve_toprr(
        dataset,
        args.k,
        region,
        method=args.method,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        shard_executor=args.shard_executor,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
        shard_fallback=not args.no_fallback,
    )
    print(format_table([result.summary()], title="TopRR result"))
    if args.shards:
        print(
            f"\nsharded pre-filter: {result.stats.n_shards} shards "
            f"({args.shard_strategy}, executor={args.shard_executor}), "
            f"merge {result.stats.merge_seconds * 1000:.2f} ms"
        )
        if result.stats.degraded or result.stats.n_retries:
            print(
                f"resilience: {result.stats.n_retries} retries, "
                f"{result.stats.n_worker_crashes} worker crashes, "
                f"{result.stats.n_pool_rebuilds} pool rebuilds, "
                f"{result.stats.n_degraded_shards} shard(s) degraded to serial"
            )
    if not result.is_empty():
        placement = cheapest_new_option(result)
        values = ", ".join(f"{v:.4f}" for v in placement.option)
        print(f"\ncost-optimal new option: [{values}]  (sum-of-squares cost {placement.cost:.4f})")
    else:
        print("\nthe top-ranking region is empty within the unit option box")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    if args.queries <= 0:
        print("error: --queries must be positive", file=sys.stderr)
        return 2
    dataset = generate_synthetic(args.distribution, args.n, args.d, rng=args.seed)
    distinct = max(1, min(args.distinct, args.queries))
    pairs = [
        (
            1 + (args.seed + i) % max(args.k, 1),
            random_hypercube_region(args.d, args.sigma, rng=args.seed + 1 + i),
        )
        for i in range(distinct)
    ]
    queries = [pairs[i % distinct] for i in range(args.queries)]

    if args.shards:
        engine = ShardedEngine(
            dataset,
            n_shards=args.shards,
            strategy=args.shard_strategy,
            method=args.method,
            rng=args.seed,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
            shard_fallback=not args.no_fallback,
        )
        label = f"shards={engine.n_shards}x{args.shard_strategy}"
    else:
        engine = TopRREngine(dataset, method=args.method, rng=args.seed)
        label = f"executor={args.executor}"
    mutate_every = args.mutate_every
    if mutate_every is not None and mutate_every <= 0:
        print("error: --mutate-every must be positive", file=sys.stderr)
        return 2
    start = time.perf_counter()
    try:
        if mutate_every:
            # Interleave churn mutations with the query stream: the engine
            # keeps serving and only provably affected caches are rebuilt.
            rng = np.random.default_rng(args.seed + 99)
            current, results, n_deltas = dataset, [], 0
            for index, (k, region) in enumerate(queries):
                if index and index % mutate_every == 0:
                    for current, delta in _churn_step(rng, current, args.churn):
                        engine.apply_delta(current, delta)
                        n_deltas += 1
                results.append(engine.query(k, region))
        elif args.shards:
            results = engine.query_batch(queries)
        else:
            results = engine.query_batch(queries, executor=args.executor)
    except InvalidParameterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if args.shards:
            engine.close()
    seconds = time.perf_counter() - start

    rows = [results[i].summary() for i in range(distinct)]
    print(format_table(rows, title=f"engine batch ({args.queries} queries, {distinct} distinct)"))
    info = engine.cache_info()
    if args.shards:
        info = info["merged"]
    print(
        f"\n{len(results)} queries in {seconds:.2f}s "
        f"({len(results) / max(seconds, 1e-9):.1f} queries/s, {label})"
    )
    print(f"result cache: {info['results']}")
    print(f"r-skyband cache: {info['skyband']}")
    if mutate_every:
        mutations = info["mutations"]
        print(
            f"mutations: {mutations['n_deltas']} deltas, survivor rate "
            f"{mutations['survivor_rate']:.2f} "
            f"({mutations['n_entries_survived']} skyband + "
            f"{mutations['n_results_survived']} results kept, "
            f"{mutations['n_entries_evicted'] + mutations['n_results_evicted']} evicted, "
            f"{mutations['n_memos_salvaged']} memos salvaged)"
        )
    return 0


def _command_mutate(args: argparse.Namespace) -> int:
    if args.rounds <= 0 or args.distinct <= 0:
        print("error: --rounds and --distinct must be positive", file=sys.stderr)
        return 2
    if not (0.0 < args.churn < 1.0):
        print("error: --churn must be a fraction in (0, 1)", file=sys.stderr)
        return 2
    dataset = generate_synthetic(args.distribution, args.n, args.d, rng=args.seed)
    pairs = [
        (
            1 + (args.seed + i) % max(args.k, 1),
            random_hypercube_region(args.d, args.sigma, rng=args.seed + 1 + i),
        )
        for i in range(args.distinct)
    ]
    if args.shards:
        engine = ShardedEngine(
            dataset, n_shards=args.shards, executor="serial", method=args.method, rng=args.seed
        )
    else:
        engine = TopRREngine(dataset, method=args.method, rng=args.seed)
    try:
        warm = time.perf_counter()
        for k, region in pairs:
            engine.query(k, region)
        warm_seconds = time.perf_counter() - warm
        print(
            f"warmed {args.distinct} (k, region) pairs on n={args.n} d={args.d} "
            f"in {warm_seconds:.2f}s"
        )

        rng = np.random.default_rng(args.seed + 99)
        current = dataset
        arm = "flush-all" if args.flush else "incremental"
        total = time.perf_counter()
        for round_index in range(args.rounds):
            steps = _churn_step(rng, current, args.churn)
            for current, delta in steps:
                engine.apply_delta(current, delta)
            if args.flush:
                # Baseline arm: discard everything the maintenance kept, as a
                # pre-mutation engine had to (apply_delta still rebinds the
                # dataset and re-plans shards correctly).
                engine.clear_caches()
            round_timer = time.perf_counter()
            for k, region in pairs:
                engine.query(k, region)
            requery_seconds = time.perf_counter() - round_timer
            print(
                f"round {round_index + 1}/{args.rounds} ({arm}): "
                f"{steps[0][1].n_inserted + steps[1][1].n_deleted} options churned, "
                f"requery {requery_seconds * 1000:.1f} ms"
            )
        total_seconds = time.perf_counter() - total

        info = engine.cache_info()
        if args.shards:
            info = info["merged"]
        print(f"\n{args.rounds} rounds in {total_seconds:.2f}s ({arm} maintenance)")
        if not args.flush:
            mutations = info["mutations"]
            print(
                f"maintenance: {mutations['n_deltas']} deltas, survivor rate "
                f"{mutations['survivor_rate']:.2f}, "
                f"{mutations['n_dominance_tests']} dominance tests, "
                f"{mutations['n_memos_salvaged']} memos salvaged"
            )
        # Parity tripwire: the maintained engine answers exactly like a fresh
        # engine built on the final dataset.
        k, region = pairs[0]
        maintained = engine.query(k, region)
        oracle = TopRREngine(current, method=args.method, rng=args.seed).query(k, region)
        if maintained.vertices_reduced.tobytes() != oracle.vertices_reduced.tobytes():
            print("error: maintained engine diverged from a fresh rebuild", file=sys.stderr)
            return 1
        print("parity: maintained results are bit-identical to a fresh rebuild")
    finally:
        if args.shards:
            engine.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.exceptions import SerializationError
    from repro.serving import EngineRegistry
    from repro.serving.server import ToprrServer

    dataset = generate_synthetic(args.distribution, args.n, args.d, rng=args.seed)
    if args.shards:
        engine = ShardedEngine(
            dataset, n_shards=args.shards, method=args.method, rng=args.seed
        )
    else:
        engine = TopRREngine(dataset, method=args.method, rng=args.seed)
    if args.snapshot:
        path = Path(args.snapshot)
        if not path.exists():
            print(f"error: snapshot {path} does not exist", file=sys.stderr)
            return 2
        try:
            counts = engine.load_caches(path)
        except SerializationError as error:
            print(f"error: refusing snapshot {path}: {error}", file=sys.stderr)
            return 2
        print(
            f"restored warm caches from {path}: "
            f"{counts['skyband_entries']} skyband entries, "
            f"{counts['result_entries']} results, {counts['memo_rows']} memo rows"
        )

    registry = EngineRegistry()
    registry.add("default", engine)
    server = ToprrServer(
        registry, host=args.host, port=args.port, n_solver_threads=args.threads
    )

    async def _serve() -> None:
        await server.start()
        print(f"serving {dataset.name} (n={dataset.n_options}, d={dataset.n_attributes}) "
              f"at {server.url} — Ctrl-C to stop")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if args.save_snapshot:
            path = engine.save_caches(args.save_snapshot)
            print(f"saved warm caches to {path}")
        if args.shards:
            engine.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "solve":
        return _command_solve(args)
    if args.command == "batch":
        return _command_batch(args)
    if args.command == "mutate":
        return _command_mutate(args)
    if args.command == "serve":
        return _command_serve(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
