"""Command-line interface.

Examples
--------
List all reproducible experiments::

    toprr list

Run one experiment (Figure 9a at smoke scale) and print its table::

    toprr run fig9a --scale smoke

Solve a single TopRR instance on synthetic data::

    toprr solve --n 5000 --d 4 --k 10 --sigma 0.05 --method "tas*"
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.placement import cheapest_new_option
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_synthetic
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.config import Scale
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_table, save_csv_rows
from repro.preference.random_regions import random_hypercube_region
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="toprr",
        description="TopRR: creating top ranking options (VLDB 2019 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the reproducible figures and tables")

    run = sub.add_parser("run", help="run one experiment or ablation and print its rows")
    run.add_argument(
        "experiment",
        help=f"experiment id, one of {sorted(EXPERIMENTS) + sorted(ABLATIONS)}",
    )
    run.add_argument("--scale", default="scaled", help="smoke | scaled | paper (default: scaled)")
    run.add_argument("--csv", default=None, help="optional path to save the rows as CSV")

    solve = sub.add_parser("solve", help="solve one TopRR instance on synthetic data")
    solve.add_argument("--n", type=int, default=10_000, help="number of options")
    solve.add_argument("--d", type=int, default=4, help="number of attributes")
    solve.add_argument("--k", type=int, default=10, help="rank requirement k")
    solve.add_argument("--sigma", type=float, default=0.01, help="preference-region side length")
    solve.add_argument("--distribution", default="IND", help="IND | COR | ANTI")
    solve.add_argument("--method", default="tas*", help="tas* | tas | pac")
    solve.add_argument("--seed", type=int, default=7, help="random seed")

    return parser


def _command_list() -> int:
    for registry, heading in ((EXPERIMENTS, "paper experiments"), (ABLATIONS, "extension studies")):
        print(f"[{heading}]")
        for name in sorted(registry):
            doc = (registry[name].__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"  {name:20s}  {summary}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    scale = Scale.parse(args.scale)
    if args.experiment in ABLATIONS:
        rows = run_ablation(args.experiment, scale=scale)
    else:
        rows = run_experiment(args.experiment, scale=scale)
    print(format_table(rows, title=f"{args.experiment} (scale={scale.value})"))
    if args.csv:
        path = save_csv_rows(rows, args.csv)
        print(f"\nsaved {len(rows)} rows to {path}")
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    dataset = generate_synthetic(args.distribution, args.n, args.d, rng=args.seed)
    region = random_hypercube_region(args.d, args.sigma, rng=args.seed + 1)
    result = solve_toprr(dataset, args.k, region, method=args.method)
    print(format_table([result.summary()], title="TopRR result"))
    if not result.is_empty():
        placement = cheapest_new_option(result)
        values = ", ".join(f"{v:.4f}" for v in placement.option)
        print(f"\ncost-optimal new option: [{values}]  (sum-of-squares cost {placement.cost:.4f})")
    else:
        print("\nthe top-ranking region is empty within the unit option box")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "solve":
        return _command_solve(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
