"""Why-not top-k answers (He & Lo [21]; Liu et al. [26]).

A why-not question arises when an option the analyst expected to see is
missing from a top-k result.  Two exact remedies are provided, matching the
two levers the literature considers:

* :func:`why_not_option_modification` — keep the weight vector, improve the
  *option*: the minimum Euclidean modification that lifts the option's score
  to the current k-th highest score.  This is the single-weight-vector
  special case of the paper's option-enhancement application (and the
  building block of the sampled baseline in :mod:`repro.core.sampled`).
* :func:`why_not_weight_perturbation` — keep the option, perturb the *weight
  vector*: the minimum-norm change of the (normalised) weights for which the
  option enters the top-k.  The feasible weight set is the union of convex
  cells reported by the monochromatic reverse top-k query, so the exact
  answer is the smallest distance from the original weights to any of those
  cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InfeasibleProblemError, InvalidParameterError
from repro.geometry.qp import project_point_onto_polytope
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.related.reverse_topk import monochromatic_reverse_top_k
from repro.topk.query import top_k
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


def _tolerant_rank(
    competitors: Dataset,
    weight: np.ndarray,
    option: np.ndarray,
    tol: Tolerance,
) -> int:
    """Rank of ``option`` counting only competitors that beat it beyond the score tolerance.

    Matches the tie semantics of Definition 2 (ties count in the option's
    favour) and keeps the reported ranks stable when a why-not answer lands
    exactly on a tie hyperplane, as minimum-perturbation answers do.
    """
    scores = competitors.values @ weight
    own = float(option @ weight)
    return 1 + int(np.count_nonzero(scores > own + tol.score))


@dataclass(frozen=True)
class WhyNotOptionAnswer:
    """Minimum option modification that brings the option into the top-k."""

    original: np.ndarray
    modified: np.ndarray
    cost: float
    rank_before: int
    rank_after: int


@dataclass(frozen=True)
class WhyNotWeightAnswer:
    """Minimum weight perturbation for which the option enters the top-k."""

    original_weight: np.ndarray
    modified_weight: np.ndarray
    distance: float
    rank_before: int
    rank_after: int


def why_not_option_modification(
    dataset: Dataset,
    option: Sequence[float],
    weight: Sequence[float],
    k: int,
    exclude_index: Optional[int] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> WhyNotOptionAnswer:
    """Smallest Euclidean change to ``option`` that makes it top-k under ``weight``.

    The requirement is the single linear constraint ``w . o' >= TopK(w)``, so
    the optimal modification moves the option along the weight direction by
    exactly the score deficit (or not at all when the option already
    qualifies).
    """
    option = np.asarray(option, dtype=float)
    weight = np.asarray(weight, dtype=float)
    if option.shape != (dataset.n_attributes,) or weight.shape != (dataset.n_attributes,):
        raise InvalidParameterError("option and weight must match the dataset dimensionality")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")

    competitors = dataset if exclude_index is None else dataset.without([exclude_index])
    k_effective = min(k, competitors.n_options)
    threshold = top_k(competitors, weight, k_effective).threshold
    rank_before = _tolerant_rank(competitors, weight, option, tol)

    deficit = threshold - float(option @ weight)
    if deficit <= tol.score:
        modified = option.copy()
    else:
        norm_squared = float(weight @ weight)
        if norm_squared <= 0:
            raise InfeasibleProblemError("the weight vector is identically zero")
        modified = option + (deficit / norm_squared) * weight

    rank_after = _tolerant_rank(competitors, weight, modified, tol)
    return WhyNotOptionAnswer(
        original=option,
        modified=modified,
        cost=float(np.linalg.norm(modified - option)),
        rank_before=rank_before,
        rank_after=rank_after,
    )


def why_not_weight_perturbation(
    dataset: Dataset,
    option: Sequence[float],
    weight: Sequence[float],
    k: int,
    region: Optional[PreferenceRegion] = None,
    exclude_index: Optional[int] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> WhyNotWeightAnswer:
    """Smallest perturbation of ``weight`` (in reduced coordinates) that ranks ``option`` top-k.

    The set of weight vectors for which the option ranks among the top-k is
    the union of the convex cells returned by the monochromatic reverse
    top-k query; the answer is the projection of the original weights onto
    the nearest of those cells.  Raises
    :class:`~repro.exceptions.InfeasibleProblemError` when the option cannot
    reach the top-k anywhere in the search region.
    """
    option = np.asarray(option, dtype=float)
    weight = np.asarray(weight, dtype=float)
    if option.shape != (dataset.n_attributes,) or weight.shape != (dataset.n_attributes,):
        raise InvalidParameterError("option and weight must match the dataset dimensionality")

    space = PreferenceSpace(dataset.n_attributes)
    reduced_original = space.to_reduced(weight)

    competitors = dataset if exclude_index is None else dataset.without([exclude_index])
    rank_before = _tolerant_rank(competitors, weight / weight.sum(), option, tol)

    answer = monochromatic_reverse_top_k(
        dataset,
        option,
        k,
        region=region,
        exclude_index=exclude_index,
        tol=tol,
    )
    if not answer.winning_cells:
        raise InfeasibleProblemError(
            "the option cannot enter the top-k anywhere in the search region"
        )

    best_distance = np.inf
    best_reduced = reduced_original
    for cell in answer.winning_cells:
        projected = project_point_onto_polytope(reduced_original, cell.polytope, tol=tol)
        distance = float(np.linalg.norm(projected - reduced_original))
        if distance < best_distance:
            best_distance = distance
            best_reduced = projected

    modified_full = space.to_full(best_reduced)
    rank_after = _tolerant_rank(competitors, modified_full, option, tol)
    return WhyNotWeightAnswer(
        original_weight=space.to_full(reduced_original),
        modified_weight=modified_full,
        distance=best_distance,
        rank_before=rank_before,
        rank_after=rank_after,
    )
