"""Related preference-space queries the paper positions TopRR against.

Section 2 of the paper surveys a family of queries that share TopRR's
machinery (linear scores, preference-space halfspaces, dominance) but answer
different questions.  This package implements the ones that are either used
as building blocks, compared against, or needed to validate the TopRR output:

* :mod:`repro.related.reverse_topk` — the monochromatic reverse top-k query
  (Vlachou et al. [44], Tang et al. [41]): all parts of the preference space
  where a given option ranks among the top-k; plus the bichromatic variant
  over a finite set of weight vectors.
* :mod:`repro.related.maximum_rank` — the maximum-rank query (Mouratidis et
  al. [31]): the best rank an option can achieve anywhere in a preference
  region.
* :mod:`repro.related.why_not` — why-not top-k (He & Lo [21]) and the
  why-not reverse top-k adaptation (Liu et al. [26]) that Section 2.1
  discusses as the (inexact) sampled alternative to TopRR.
* :mod:`repro.related.regret` — regret-minimizing representative sets
  (Nanongkai et al. [32]), the subset-selection family Section 2.2 relates
  TopRR to.
"""

from repro.related.maximum_rank import MaximumRankResult, maximum_rank
from repro.related.regret import greedy_regret_set, max_regret_ratio
from repro.related.reverse_topk import (
    ReverseTopKResult,
    bichromatic_reverse_top_k,
    monochromatic_reverse_top_k,
)
from repro.related.why_not import (
    WhyNotOptionAnswer,
    WhyNotWeightAnswer,
    why_not_option_modification,
    why_not_weight_perturbation,
)

__all__ = [
    "ReverseTopKResult",
    "monochromatic_reverse_top_k",
    "bichromatic_reverse_top_k",
    "MaximumRankResult",
    "maximum_rank",
    "WhyNotOptionAnswer",
    "WhyNotWeightAnswer",
    "why_not_option_modification",
    "why_not_weight_perturbation",
    "greedy_regret_set",
    "max_regret_ratio",
]
