"""Reverse top-k queries (Vlachou et al. [44], Tang et al. [41]).

The *monochromatic* reverse top-k query asks, for a given option ``q``: in
which parts of the (continuous) preference space does ``q`` rank among the
top-k?  The answer is a union of convex cells.  This is the converse
perspective to TopRR — TopRR fixes the preference region and asks where the
option should go; reverse top-k fixes the option and asks which preferences
it wins — and the two are tightly linked (an option placed inside ``oR``
must have a reverse top-k region that covers all of ``wR``), which the test
suite exploits as a correctness cross-check.

The *bichromatic* variant restricts attention to a finite set of customer
weight vectors and simply reports those whose top-k contains ``q``.

The monochromatic algorithm is a rank-oriented test-and-split: for a region,
options that beat ``q`` at every vertex beat it everywhere (Lemma 1), so the
rank of ``q`` is bracketed by the "beats everywhere" and "beats somewhere"
counts; regions whose bracket straddles ``k`` are split along a hyperplane
``wHP(q, p)`` of an option whose order against ``q`` flips inside the region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DegeneratePolytopeError, EmptyRegionError, InvalidParameterError
from repro.geometry.hyperplane import Hyperplane
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


@dataclass
class RankBounds:
    """Bracket on the rank of the query option inside a preference region."""

    lower: int
    upper: int
    swing_options: np.ndarray

    @property
    def is_tight(self) -> bool:
        """True when the rank is the same everywhere in the region."""
        return self.lower == self.upper


@dataclass
class ReverseTopKResult:
    """Answer to a monochromatic reverse top-k query.

    Attributes
    ----------
    option:
        The query option ``q``.
    k:
        The rank requirement.
    region:
        The preference region the query was restricted to.
    winning_cells:
        Convex sub-regions in which ``q`` ranks among the top-k everywhere.
    n_regions_tested:
        Number of regions examined by the test-and-split recursion.
    """

    option: np.ndarray
    k: int
    region: PreferenceRegion
    winning_cells: List[PreferenceRegion] = field(default_factory=list)
    n_regions_tested: int = 0

    def winning_volume(self) -> float:
        """Total volume (in reduced coordinates) of the winning cells."""
        return float(sum(cell.volume() for cell in self.winning_cells))

    def coverage(self) -> float:
        """Fraction of the query region's volume in which ``q`` is top-k."""
        total = self.region.volume()
        if total <= 0:
            return 0.0
        return min(1.0, self.winning_volume() / total)

    def covers(self, reduced_weight: Sequence[float]) -> bool:
        """True if the reduced weight vector falls inside some winning cell."""
        return any(cell.contains(reduced_weight) for cell in self.winning_cells)

    def covers_region(self, tol: float = 1e-6) -> bool:
        """True if the winning cells cover (essentially all of) the query region."""
        return self.coverage() >= 1.0 - tol


class _RankWorkingSet:
    """Affine score forms of the dataset and the query option in reduced space."""

    def __init__(self, dataset: Dataset, option: np.ndarray, exclude_index: Optional[int]):
        space = PreferenceSpace(dataset.n_attributes)
        coefficients, constants = space.affine_score_form(dataset.values)
        keep = np.ones(dataset.n_options, dtype=bool)
        if exclude_index is not None:
            keep[exclude_index] = False
        self.coefficients = coefficients[keep]
        self.constants = constants[keep]
        query_coeff, query_const = space.affine_score_form(option[None, :])
        self.query_coefficient = query_coeff[0]
        self.query_constant = query_const[0]

    def score_differences(self, vertices: np.ndarray) -> np.ndarray:
        """``S_v(p_i) - S_v(q)`` for every competitor ``p_i`` and vertex ``v`` (shape ``(n, m)``)."""
        vertices = np.atleast_2d(vertices)
        competitor_scores = self.constants[:, None] + self.coefficients @ vertices.T
        query_scores = self.query_constant + vertices @ self.query_coefficient
        return competitor_scores - query_scores[None, :]

    def splitting_hyperplane(self, competitor: int) -> Hyperplane:
        """The reduced-space hyperplane where the competitor and ``q`` score equally."""
        coeff = self.coefficients[competitor] - self.query_coefficient
        const = self.constants[competitor] - self.query_constant
        # S_w(p) - S_w(q) = coeff . w + const = 0
        return Hyperplane(coeff, -const)


def rank_bounds(
    working: _RankWorkingSet,
    vertices: np.ndarray,
    tol: Tolerance = DEFAULT_TOL,
) -> RankBounds:
    """Bracket the rank of the query option over the polytope spanned by ``vertices``.

    Competitors beating ``q`` at every vertex beat it everywhere inside
    (Lemma 1), giving the lower rank bound; competitors beating ``q`` at some
    vertex give the upper bound.  The options in between (the *swing*
    options) are the only possible splitting hyperplanes.
    """
    differences = working.score_differences(vertices)
    beats_everywhere = np.all(differences > tol.score, axis=1)
    beats_somewhere = np.any(differences > tol.score, axis=1)
    swing = np.flatnonzero(beats_somewhere & ~beats_everywhere)
    return RankBounds(
        lower=1 + int(np.count_nonzero(beats_everywhere)),
        upper=1 + int(np.count_nonzero(beats_somewhere)),
        swing_options=swing,
    )


def _strictly_swinging(
    working: _RankWorkingSet,
    vertices: np.ndarray,
    candidates: np.ndarray,
    tol: Tolerance,
) -> Optional[int]:
    """A swing competitor whose order against ``q`` strictly flips across the vertices."""
    differences = working.score_differences(vertices)
    for candidate in candidates:
        row = differences[candidate]
        if np.any(row > tol.score) and np.any(row < -tol.score):
            return int(candidate)
    return None


def monochromatic_reverse_top_k(
    dataset: Dataset,
    option: Sequence[float],
    k: int,
    region: Optional[PreferenceRegion] = None,
    exclude_index: Optional[int] = None,
    max_regions: int = 200_000,
    tol: Tolerance = DEFAULT_TOL,
) -> ReverseTopKResult:
    """All parts of ``region`` where ``option`` ranks among the top-k of ``dataset``.

    Parameters
    ----------
    dataset:
        The competitor dataset ``D``.
    option:
        The query option ``q`` (its attribute vector).
    k:
        Rank requirement.  Ties count in favour of ``q`` (consistent with the
        ``>=`` of the paper's Definition 2), so ``q`` is top-k at ``w`` when
        fewer than ``k`` competitors score strictly higher.
    region:
        Preference region to restrict the query to (the full valid preference
        space when omitted).
    exclude_index:
        When ``option`` is an existing member of ``dataset``, its positional
        index — it is then not counted as its own competitor.
    max_regions:
        Safety cap on the recursion size.
    """
    option = np.asarray(option, dtype=float)
    if option.shape != (dataset.n_attributes,):
        raise InvalidParameterError(
            f"option must have {dataset.n_attributes} attributes, got {option.shape}"
        )
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if region is None:
        region = PreferenceRegion.full_simplex(dataset.n_attributes, tol=tol)
    if region.n_attributes != dataset.n_attributes:
        raise InvalidParameterError("region and dataset disagree on the number of attributes")

    working = _RankWorkingSet(dataset, option, exclude_index)
    result = ReverseTopKResult(option=option, k=int(k), region=region)
    stack: List[PreferenceRegion] = [region]

    while stack:
        if result.n_regions_tested >= max_regions:
            raise RuntimeError(
                f"reverse top-k exceeded the safety cap of {max_regions} regions"
            )
        current = stack.pop()
        result.n_regions_tested += 1
        try:
            vertices = current.vertices
        except (DegeneratePolytopeError, EmptyRegionError):
            continue
        if vertices.shape[0] == 0:
            continue

        bounds = rank_bounds(working, vertices, tol=tol)
        if bounds.upper <= k:
            result.winning_cells.append(current)
            continue
        if bounds.lower > k:
            continue

        competitor = _strictly_swinging(working, vertices, bounds.swing_options, tol)
        if competitor is None:
            # Every swing is a boundary tie; classify by an interior point.
            centroid_bounds = rank_bounds(working, current.centroid()[None, :], tol=tol)
            if centroid_bounds.upper <= k:
                result.winning_cells.append(current)
            continue

        below, above = current.split(working.splitting_hyperplane(competitor))
        for child in (below, above):
            if child.is_empty() or not child.is_full_dimensional():
                continue
            stack.append(child)

    return result


def bichromatic_reverse_top_k(
    dataset: Dataset,
    option: Sequence[float],
    k: int,
    weight_vectors: np.ndarray,
    exclude_index: Optional[int] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> np.ndarray:
    """Indices of the full ``weight_vectors`` whose top-k result contains ``option``.

    This is the original bichromatic formulation of [44]: the customer
    population is a finite set ``Q`` of weight vectors, and the query reports
    the customers for whom ``option`` would appear in the top-k.
    """
    option = np.asarray(option, dtype=float)
    weight_vectors = np.atleast_2d(np.asarray(weight_vectors, dtype=float))
    if weight_vectors.shape[1] != dataset.n_attributes:
        raise InvalidParameterError("weight vectors must match the dataset dimensionality")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")

    competitor_values = dataset.values
    if exclude_index is not None:
        keep = np.ones(dataset.n_options, dtype=bool)
        keep[exclude_index] = False
        competitor_values = competitor_values[keep]

    competitor_scores = competitor_values @ weight_vectors.T
    query_scores = weight_vectors @ option
    beating = competitor_scores > query_scores[None, :] + tol.score
    ranks = 1 + beating.sum(axis=0)
    return np.flatnonzero(ranks <= k)


def reverse_top_k_contains_region(
    dataset: Dataset,
    option: Sequence[float],
    k: int,
    region: PreferenceRegion,
    exclude_index: Optional[int] = None,
    tol: Tolerance = DEFAULT_TOL,
) -> bool:
    """True if ``option`` is top-k for *every* weight vector in ``region``.

    This is the predicate TopRR's output guarantees for options placed inside
    ``oR``; it is answered without the full cell enumeration by checking that
    the rank upper bound over the whole region already is ``<= k``, and
    otherwise falling back to the exact cell cover.
    """
    working = _RankWorkingSet(dataset, np.asarray(option, dtype=float), exclude_index)
    bounds = rank_bounds(working, region.vertices, tol=tol)
    if bounds.upper <= k:
        return True
    if bounds.lower > k:
        return False
    answer = monochromatic_reverse_top_k(
        dataset, option, k, region=region, exclude_index=exclude_index, tol=tol
    )
    return answer.covers_region()
