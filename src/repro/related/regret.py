"""Regret-minimizing representative sets (Nanongkai et al. [32]).

The paper's related-work discussion (Section 2.2) situates TopRR next to the
*regret minimizing set* family: pick a small subset of the options such that,
whatever the user's (linear) preferences turn out to be, the best option in
the subset scores almost as well as the best option in the full dataset.  The
**maximum regret ratio** of a subset ``S`` is

    max over weights w of   1 - max_{p in S} S_w(p) / max_{p in D} S_w(p)

and a good representative set keeps it small.  Two standard constructions
are provided:

* :func:`greedy_regret_set` — the classic greedy heuristic: repeatedly add
  the option that most reduces the current maximum regret (evaluated on a
  deterministic grid of witness weights plus the axis directions);
* :func:`max_regret_ratio` — the evaluation metric itself, computed exactly
  for a finite witness set and used both by the construction and the tests.

These are substrate-quality implementations meant for comparison and
validation (e.g. every member of a 1-regret set for k = 1 must have a
maximum-rank of 1 somewhere), not a reproduction of the specialised regret
literature.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.utils.rng import RngLike, ensure_rng


def _witness_weights(
    n_attributes: int,
    n_samples: int,
    region: Optional[PreferenceRegion],
    rng: np.random.Generator,
) -> np.ndarray:
    """Full weight vectors used as regret witnesses.

    The axis directions (single-attribute users) are always included because
    they produce the largest regrets for greedy constructions; the rest are
    drawn uniformly from ``region`` (or from the whole simplex).
    """
    axes = np.eye(n_attributes)
    if region is None:
        raw = rng.dirichlet(np.ones(n_attributes), size=n_samples)
        sampled = raw
    else:
        reduced = region.sample_weights(n_samples, rng)
        sampled = region.space.to_full_many(reduced)
        axes = axes[:0]  # a restricted region has its own corners among the samples
    return np.vstack([axes, sampled])


def max_regret_ratio(
    dataset: Dataset,
    subset_indices: Sequence[int],
    weights: Optional[np.ndarray] = None,
    n_witnesses: int = 512,
    region: Optional[PreferenceRegion] = None,
    rng: RngLike = 0,
) -> float:
    """Maximum regret ratio of ``subset_indices`` over a witness weight set.

    Parameters
    ----------
    dataset:
        The full dataset ``D``.
    subset_indices:
        Positional indices of the representative subset ``S``.
    weights:
        Explicit ``(m, d)`` witness weights; generated when omitted.
    n_witnesses, region, rng:
        Witness generation parameters (ignored when ``weights`` is given).
    """
    subset_indices = np.asarray(list(subset_indices), dtype=int)
    if subset_indices.size == 0:
        raise InvalidParameterError("the representative subset must not be empty")
    if weights is None:
        weights = _witness_weights(
            dataset.n_attributes, n_witnesses, region, ensure_rng(rng)
        )
    all_scores = dataset.values @ weights.T
    best_overall = all_scores.max(axis=0)
    best_in_subset = all_scores[subset_indices].max(axis=0)
    positive = best_overall > 0
    ratios = np.zeros_like(best_overall)
    ratios[positive] = 1.0 - best_in_subset[positive] / best_overall[positive]
    return float(ratios.max(initial=0.0))


def greedy_regret_set(
    dataset: Dataset,
    size: int,
    n_witnesses: int = 512,
    region: Optional[PreferenceRegion] = None,
    rng: RngLike = 0,
) -> np.ndarray:
    """Greedy regret-minimizing subset of ``size`` options.

    The first pick is the option with the best worst-case score ratio on the
    witness set; each subsequent pick maximally reduces the current maximum
    regret.  Returns the positional indices of the chosen options, in pick
    order.
    """
    if size <= 0:
        raise InvalidParameterError(f"size must be positive, got {size}")
    size = min(int(size), dataset.n_options)
    weights = _witness_weights(dataset.n_attributes, n_witnesses, region, ensure_rng(rng))
    all_scores = dataset.values @ weights.T
    best_overall = np.maximum(all_scores.max(axis=0), 1e-12)

    chosen: List[int] = []
    covered_best = np.zeros(weights.shape[0])
    for _ in range(size):
        # Regret for each candidate, if it were added to the current set.
        candidate_best = np.maximum(covered_best[None, :], all_scores)
        regrets = 1.0 - candidate_best / best_overall[None, :]
        worst = regrets.max(axis=1)
        worst[chosen] = np.inf  # never re-pick
        pick = int(np.argmin(worst))
        chosen.append(pick)
        covered_best = np.maximum(covered_best, all_scores[pick])
    return np.asarray(chosen, dtype=int)
