"""The maximum-rank query (Mouratidis et al. [31]).

Given an option ``q`` and a preference region (by default the whole
preference space), the query reports the *best* rank ``q`` can achieve for
any weight vector in the region — a market-impact measure for an existing
product.  The paper cites it (Section 2.2) as one of the continuous
preference-space formulations that, unlike TopRR, take the options as given.

The implementation is a branch-and-bound over the preference region: the
rank of ``q`` inside a convex cell is bracketed by the number of competitors
beating it at *every* vertex (lower bound, by Lemma 1) and at *some* vertex
(upper bound).  Cells whose lower bound cannot improve on the best rank seen
so far are pruned; the rest are split along the score hyperplane of a
competitor whose order against ``q`` flips inside the cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DegeneratePolytopeError, EmptyRegionError, InvalidParameterError
from repro.preference.region import PreferenceRegion
from repro.preference.space import PreferenceSpace
from repro.related.reverse_topk import _RankWorkingSet, _strictly_swinging, rank_bounds
from repro.utils.tolerance import DEFAULT_TOL, Tolerance


@dataclass(frozen=True)
class MaximumRankResult:
    """Answer to a maximum-rank query.

    Attributes
    ----------
    best_rank:
        The best (numerically smallest) rank the option achieves anywhere in
        the query region.
    witness_reduced:
        A reduced weight vector attaining that rank.
    witness_full:
        The same witness lifted to a full, normalised weight vector.
    n_regions_tested:
        Number of cells examined by the branch-and-bound.
    """

    best_rank: int
    witness_reduced: np.ndarray
    witness_full: np.ndarray
    n_regions_tested: int


def _rank_at(working: _RankWorkingSet, reduced_weight: np.ndarray, tol: Tolerance) -> int:
    """Exact rank of the query option at a single reduced weight vector."""
    differences = working.score_differences(reduced_weight[None, :])
    return 1 + int(np.count_nonzero(differences[:, 0] > tol.score))


def maximum_rank(
    dataset: Dataset,
    option: Sequence[float],
    region: Optional[PreferenceRegion] = None,
    exclude_index: Optional[int] = None,
    max_regions: int = 200_000,
    tol: Tolerance = DEFAULT_TOL,
) -> MaximumRankResult:
    """Best rank ``option`` can achieve for any weight vector in ``region``.

    Parameters
    ----------
    dataset:
        The competitor dataset ``D``.
    option:
        The option whose market impact is being assessed.
    region:
        Preference region to search (the full preference space when omitted).
    exclude_index:
        Positional index of ``option`` inside ``dataset`` when it is an
        existing option, so it does not compete against itself.
    max_regions:
        Safety cap on the branch-and-bound size.
    """
    option = np.asarray(option, dtype=float)
    if option.shape != (dataset.n_attributes,):
        raise InvalidParameterError(
            f"option must have {dataset.n_attributes} attributes, got {option.shape}"
        )
    if region is None:
        region = PreferenceRegion.full_simplex(dataset.n_attributes, tol=tol)
    if region.n_attributes != dataset.n_attributes:
        raise InvalidParameterError("region and dataset disagree on the number of attributes")

    space = PreferenceSpace(dataset.n_attributes)
    working = _RankWorkingSet(dataset, option, exclude_index)

    best_rank = dataset.n_options + 1
    best_witness = region.centroid()
    n_tested = 0
    stack: List[PreferenceRegion] = [region]

    while stack:
        if n_tested >= max_regions:
            raise RuntimeError(f"maximum rank exceeded the safety cap of {max_regions} regions")
        current = stack.pop()
        n_tested += 1
        try:
            vertices = current.vertices
        except (DegeneratePolytopeError, EmptyRegionError):
            continue
        if vertices.shape[0] == 0:
            continue

        bounds = rank_bounds(working, vertices, tol=tol)
        if bounds.lower >= best_rank:
            continue

        # The centroid always attains a feasible rank; use it to tighten the
        # incumbent before deciding whether to split further.
        centroid = current.centroid()
        centroid_rank = _rank_at(working, centroid, tol)
        if centroid_rank < best_rank:
            best_rank = centroid_rank
            best_witness = centroid

        if bounds.is_tight or bounds.lower >= best_rank:
            continue

        competitor = _strictly_swinging(working, vertices, bounds.swing_options, tol)
        if competitor is None:
            continue
        below, above = current.split(working.splitting_hyperplane(competitor))
        for child in (below, above):
            if child.is_empty() or not child.is_full_dimensional():
                continue
            stack.append(child)

    return MaximumRankResult(
        best_rank=int(best_rank),
        witness_reduced=np.asarray(best_witness, dtype=float),
        witness_full=space.to_full(best_witness),
        n_regions_tested=n_tested,
    )
