"""Option enhancement and budgeted impact maximisation (Sections 1 and 3.1).

An existing hotel is losing visibility for a target clientele.  The script

1. computes the top-ranking region for that clientele,
2. finds the cheapest renovation (Euclidean modification of the hotel's
   attributes) that guarantees a top-k ranking, and
3. scans the rank guarantee k downwards to find the most ambitious guarantee
   affordable within a fixed renovation budget — the paper's budgeted
   impact-maximisation use case.

Run with::

    python examples/option_enhancement.py
"""

from __future__ import annotations

import numpy as np

from repro import PreferenceRegion, solve_toprr
from repro.core.placement import cheapest_enhancement, smallest_k_within_budget
from repro.data.surrogates import hotel_surrogate
from repro.preference.random_regions import centred_hypercube_region


def main() -> None:
    hotels = hotel_surrogate(n_options=5_000)
    print(f"market: {hotels.n_options} hotels with attributes {hotels.attribute_names}")

    # Clientele: travellers who care about stars and value-for-money roughly
    # equally, with mild interest in the remaining attributes.
    clientele = centred_hypercube_region(hotels.n_attributes, side_length=0.06)
    k = 10

    result = solve_toprr(hotels, k=k, region=clientele)
    print(f"top-{k} guarantee region computed: |V_all| = {result.n_vertices}, "
          f"volume = {result.volume():.5f}")

    # Pick a middling hotel to renovate: the one closest to the market average.
    average = hotels.values.mean(axis=0)
    target_index = int(np.argmin(np.linalg.norm(hotels.values - average, axis=1)))
    current = hotels.values[target_index]
    print(f"\nrenovating hotel #{target_index}: current attributes {np.round(current, 3)}")
    print("currently top-ranking for the clientele?", bool(result.contains(current)))

    enhancement = cheapest_enhancement(result, current)
    print("cheapest renovation reaching a guaranteed top-10:")
    print("  new attributes :", np.round(enhancement.option, 3))
    print("  modification   :", np.round(enhancement.option - current, 3))
    print(f"  cost (distance): {enhancement.cost:.4f}")

    # Budgeted impact maximisation: the smallest k we can afford.
    print("\nbudget scan (smallest affordable rank guarantee):")
    for budget in (0.05, 0.15, 0.4, 1.0):
        placement = smallest_k_within_budget(
            hotels, clientele, current, budget=budget, k_max=20, k_min=1
        )
        if placement is None:
            print(f"  budget {budget:>4}: even a top-20 guarantee is unaffordable")
        else:
            print(f"  budget {budget:>4}: best guarantee top-{placement.k:<2d} "
                  f"at cost {placement.cost:.4f}")


if __name__ == "__main__":
    main()
