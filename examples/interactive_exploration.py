"""Interactive clientele exploration with pre-computation and parallel solving.

Note: the parallel section only pays off on multi-core machines — on a
single-core box the process pool adds overhead without any speed-up (the
answers remain identical either way, which is what the script checks).

The scenario: an analyst explores several candidate clientele segments for
the same product catalogue, asking for the top-ranking region and the
cheapest placement in each.  Two of the library's scalability extensions
(both named as future work in the paper's conclusion) make this interactive:

* :class:`repro.core.precompute.PrecomputedTopRR` computes the dataset's
  k-skyband once and memoises repeated queries;
* :func:`repro.core.parallel.solve_toprr_parallel` chops the preference
  region across worker processes for the occasional large segment.

Run with::

    python examples/interactive_exploration.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Dataset, PreferenceRegion, TopRREngine, solve_toprr
from repro.core.parallel import solve_toprr_parallel
from repro.core.placement import cheapest_new_option
from repro.core.precompute import PrecomputedTopRR


def main() -> None:
    rng = np.random.default_rng(7)
    catalogue = Dataset(
        rng.random((20_000, 3)),
        attribute_names=["performance", "battery", "portability"],
        name="catalogue",
    )
    k = 10

    segments = {
        "performance professionals": [(0.55, 0.62), (0.18, 0.24)],
        "road warriors": [(0.20, 0.27), (0.20, 0.27)],
        "balanced buyers": [(0.30, 0.37), (0.30, 0.37)],
    }

    # --- one-off pre-computation -------------------------------------------------
    start = time.perf_counter()
    index = PrecomputedTopRR(catalogue, k_max=k)
    build_seconds = time.perf_counter() - start
    print(f"pre-computation: {catalogue.n_options} options reduced to "
          f"{index.skyband_size} candidates in {build_seconds:.2f}s "
          f"({index.reduction_factor:.1f}x smaller)")

    # --- interactive exploration -------------------------------------------------
    for name, bounds in segments.items():
        region = PreferenceRegion.hyperrectangle(bounds)
        start = time.perf_counter()
        result = index.solve(k, region)
        seconds = time.perf_counter() - start
        placement = cheapest_new_option(result)
        print(f"\nsegment '{name}': solved in {seconds:.2f}s")
        print(f"  region volume of oR      : {result.volume():.5f}")
        print(f"  cost-optimal new product : {np.round(placement.option, 3)} "
              f"(cost {placement.cost:.3f})")

    # Revisiting a segment hits the result cache and is effectively free.
    start = time.perf_counter()
    index.solve(k, PreferenceRegion.hyperrectangle(segments["balanced buyers"]))
    print(f"\nrevisiting 'balanced buyers': {time.perf_counter() - start:.4f}s "
          f"(cache {index.cache_info()})")

    # --- the same session through the TopRREngine --------------------------------
    # TopRREngine generalises the memo above: bounded LRU caches, batch
    # execution, and cache warming.  query_batch answers the whole segment
    # mix in one call.
    engine = TopRREngine(catalogue)
    engine.warm([k], [PreferenceRegion.hyperrectangle(b) for b in segments.values()])
    start = time.perf_counter()
    batch = engine.query_batch(
        [(k, PreferenceRegion.hyperrectangle(b)) for b in segments.values()] * 2
    )
    print(f"\nengine batch: {len(batch)} queries in {time.perf_counter() - start:.2f}s, "
          f"caches {engine.cache_info()}")

    # --- a large segment, solved in parallel -------------------------------------
    wide = PreferenceRegion.hyperrectangle([(0.2, 0.5), (0.2, 0.5)])
    start = time.perf_counter()
    sequential = solve_toprr(catalogue, k, wide)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = solve_toprr_parallel(catalogue, k, wide, n_workers=4, executor="process")
    parallel_seconds = time.perf_counter() - start

    probes = rng.random((500, 3))
    identical = bool(
        np.array_equal(sequential.contains_many(probes), parallel.contains_many(probes))
    )
    print(f"\nwide segment: sequential {sequential_seconds:.2f}s, "
          f"parallel {parallel_seconds:.2f}s, answers identical: {identical}")


if __name__ == "__main__":
    main()
