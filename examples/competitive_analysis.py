"""Competitive analysis of an existing product, end to end.

The scenario: a manufacturer wants to understand how one of its existing
products stands in the market before deciding on a redesign.  The script
combines the related preference-space queries with TopRR:

1. *Maximum rank* — the best rank the product can achieve for any possible
   customer preference (its global market potential).
2. *Reverse top-k* — for which share of the targeted clientele the product is
   already among the top-k (its current coverage of the target segment).
3. *TopRR + enhancement* — the cheapest redesign that guarantees a top-k
   ranking for the entire target segment, and how that compares to the
   why-not-style fix for a single representative customer.

Run with::

    python examples/competitive_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import PreferenceRegion, solve_toprr
from repro.core.placement import cheapest_enhancement
from repro.data.surrogates import hotel_surrogate
from repro.related import (
    maximum_rank,
    monochromatic_reverse_top_k,
    why_not_option_modification,
)


def main() -> None:
    # The market: hotel-style options with 4 quality attributes.  We take the
    # viewpoint of "product" number 42 — a mid-table option.
    market = hotel_surrogate(n_options=1_000)
    product_index = 42
    product = market.values[product_index]
    k = 20
    print(f"market: {market.n_options} options, {market.n_attributes} attributes")
    print(f"analysed option #{product_index}: {np.round(product, 3)}")

    # The segment family under study: customers with no extreme preferences
    # (every reduced weight between 10% and 45%), and the specific target
    # clientele inside it: customers who weigh the first two attributes highly.
    segment_family = PreferenceRegion.hyperrectangle([(0.10, 0.45)] * (market.n_attributes - 1))
    bounds = [(0.30, 0.38), (0.30, 0.38)] + [(0.10, 0.16)] * (market.n_attributes - 3)
    clientele = PreferenceRegion.hyperrectangle(bounds)

    # 1. Potential: the best rank achievable for any customer in the segment family.
    potential = maximum_rank(
        market, product, region=segment_family, exclude_index=product_index
    )
    print(f"\n1. best achievable rank across the segment family: {potential.best_rank}")
    print(f"   attained for weights ~ {np.round(potential.witness_full, 3)}")

    # 2. Coverage of the target clientele: in which share of it is the
    #    product already among the top-k?
    coverage = monochromatic_reverse_top_k(
        market, product, k, region=clientele, exclude_index=product_index
    )
    print(f"\n2. share of the target clientele already served (top-{k}): "
          f"{100 * coverage.coverage():.1f}%")

    # 3a. The exact fix for the whole segment: TopRR + cheapest enhancement.
    result = solve_toprr(market, k=k, region=clientele)
    enhancement = cheapest_enhancement(result, product)
    print(f"\n3. cheapest redesign with a segment-wide top-{k} guarantee:")
    print(f"   new attribute vector : {np.round(enhancement.option, 3)}")
    print(f"   modification cost    : {enhancement.cost:.4f} (Euclidean)")

    # 3b. For contrast: fixing the product for a single representative
    #     customer (the clientele centroid) — cheaper, but with no guarantee
    #     for the rest of the segment.
    representative = clientele.space.to_full(clientele.centroid())
    single_fix = why_not_option_modification(
        market, product, representative, k, exclude_index=product_index
    )
    single_coverage = monochromatic_reverse_top_k(
        market, single_fix.modified, k, region=clientele, exclude_index=product_index
    )
    print("\n   for comparison, fixing only the segment's central customer:")
    print(f"   modification cost    : {single_fix.cost:.4f}")
    print(f"   actual segment share covered by that fix: "
          f"{100 * single_coverage.coverage():.1f}% "
          f"(the TopRR redesign covers 100% by construction)")


if __name__ == "__main__":
    main()
