"""The paper's case study (Section 6.2, Figure 7): introducing a new laptop.

A laptop manufacturer targets two very different clienteles on a market of
149 laptops rated by performance and battery life:

* designers, who weigh performance heavily (wR = [0.7, 0.8]), and
* business travellers, who want battery life above all (wR = [0.1, 0.2]).

For each clientele the script computes the region of laptop designs that are
guaranteed to rank in the top-3, the cost-optimal design inside that region
(cost = performance^2 + battery^2, as in the paper), and the saving relative
to the competitors already in the region.

Run with::

    python examples/laptop_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro import PreferenceRegion, solve_toprr
from repro.core.placement import cheapest_new_option, cost_saving_vs_competitors
from repro.data.surrogates import cnet_laptops
from repro.geometry.qp import quadratic_cost


def study(dataset, label: str, low: float, high: float, k: int = 3) -> None:
    region = PreferenceRegion.interval(low, high)
    result = solve_toprr(dataset, k=k, region=region)
    placement = cheapest_new_option(result)
    saving_low, saving_high = cost_saving_vs_competitors(result, placement)
    competitors = result.existing_top_ranking_options()

    print(f"\n=== {label}: wR = [{low}, {high}], top-{k} guarantee ===")
    print(f"  laptops already in the top-ranking region: {len(competitors)}")
    for index in competitors:
        name = dataset.id_of(index)
        perf, batt = dataset.values[index]
        print(f"    - {name:24s} performance={perf:.2f} battery={batt:.2f} "
              f"cost={quadratic_cost(dataset.values[index]):.3f}")
    perf, batt = placement.option
    print(f"  cost-optimal new laptop: performance={perf:.2f} battery={batt:.2f} "
          f"(cost {placement.cost:.3f})")
    if competitors.size:
        print(f"  cheaper than existing competitors by {100*saving_low:.1f}% - {100*saving_high:.1f}%")


def main() -> None:
    laptops = cnet_laptops()
    print(f"market: {laptops.n_options} laptops with attributes {laptops.attribute_names}")

    study(laptops, "Designers (performance-hungry)", 0.7, 0.8)
    study(laptops, "Business travellers (battery-hungry)", 0.1, 0.2)

    # A quick look at how the guarantee strength changes the feasible region.
    print("\n=== Region volume vs rank guarantee (designers) ===")
    region = PreferenceRegion.interval(0.7, 0.8)
    for k in (1, 2, 3, 5, 10):
        result = solve_toprr(laptops, k=k, region=region)
        print(f"  k={k:2d}: volume of oR = {result.volume():.4f}, "
              f"existing options inside = {result.existing_top_ranking_options().size}")


if __name__ == "__main__":
    main()
