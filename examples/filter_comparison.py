"""Compare the pre-filters of Section 6.3 on a synthetic market (Figure 8 in miniature).

TopRR never needs the whole dataset: options that cannot reach the top-k for
any preference in the target region are irrelevant.  The paper compares four
ways of finding a small superset of the relevant options — the k-skyband,
k-onion layers, the region-aware r-skyband, and the exact (but expensive)
UTK filter — and picks the r-skyband.  This script reproduces that
comparison and then shows that the final TopRR answer is identical no matter
which (correct) filter is used.

Run with::

    python examples/filter_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import solve_toprr
from repro.data.generators import generate_anticorrelated
from repro.preference.random_regions import random_hypercube_region
from repro.pruning.comparison import compare_filters


def main() -> None:
    dataset = generate_anticorrelated(8_000, 4, rng=11)
    region = random_hypercube_region(4, 0.03, rng=12)
    k = 10

    print(f"dataset: {dataset.name}, k={k}")
    comparison = compare_filters(dataset, k, region)
    print(f"{'filter':12s} {'retained':>9s} {'seconds':>9s} {'retained/max':>13s} {'time/max':>9s}")
    for row in comparison.rows():
        print(
            f"{row['filter']:12s} {row['retained']:9d} {row['seconds']:9.3f} "
            f"{row['retained_norm']:13.3f} {row['seconds_norm']:9.3f}"
        )

    # Whatever the filter, the TopRR region itself is the same: the filters
    # only discard options that can never matter.
    print("\ncross-checking that the final TopRR region is filter-independent ...")
    baseline = solve_toprr(dataset, k, region, prefilter=True)
    unfiltered = solve_toprr(dataset, k, region, prefilter=False)
    probes = np.random.default_rng(0).random((2_000, dataset.n_attributes))
    agree = np.array_equal(baseline.contains_many(probes), unfiltered.contains_many(probes))
    print("membership decisions identical with and without pre-filtering:", agree)


if __name__ == "__main__":
    main()
