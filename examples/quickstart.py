"""Quickstart: compute a top-ranking region and the cheapest option to place in it.

The scenario: a market of 10,000 products with 4 quality attributes, a
business owner targeting customers whose preferences lie in a small box of
the preference spectrum, and the requirement that the new product ranks in
the top-10 for every such customer.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, PreferenceRegion, TopRREngine, solve_toprr
from repro.core.placement import cheapest_new_option
from repro.core.verify import verify_result_by_sampling


def main() -> None:
    rng = np.random.default_rng(2019)

    # 1. The market: 10,000 existing options with 4 attributes in [0, 1].
    market = Dataset(
        rng.random((10_000, 4)),
        attribute_names=["quality", "durability", "efficiency", "service"],
        name="quickstart-market",
    )

    # 2. The target clientele: a box in the reduced preference space.  With 4
    #    attributes the preference space is 3-dimensional (the 4th weight is
    #    implied by normalisation).
    clientele = PreferenceRegion.hyperrectangle([(0.30, 0.36), (0.22, 0.28), (0.18, 0.24)])

    # 3. Solve TopRR: where can a new option be placed so that it is in the
    #    top-10 for *every* preference vector in the target box?
    result = solve_toprr(market, k=10, region=clientele, method="tas*")
    print("TopRR solved:", result.summary())
    print(f"  options surviving the r-skyband filter : {result.filtered.n_options}")
    print(f"  vertices in V_all                      : {result.n_vertices}")
    print(f"  volume of the top-ranking region oR    : {result.volume():.5f}")

    # 4. Check a few candidate placements.
    premium = np.array([0.95, 0.95, 0.95, 0.95])
    mediocre = np.array([0.6, 0.6, 0.6, 0.6])
    print(f"  premium candidate  {premium} top-ranking? {bool(result.contains(premium))}")
    print(f"  mediocre candidate {mediocre} top-ranking? {bool(result.contains(mediocre))}")

    # 5. The cheapest placement under the summed-squares manufacturing cost.
    placement = cheapest_new_option(result)
    print("  cost-optimal new option:", np.round(placement.option, 4))
    print(f"  manufacturing cost      : {placement.cost:.4f}")

    # 6. Independent sanity check by sampling.
    report = verify_result_by_sampling(result, rng=0)
    print("  sampling verification passed:", report.passed)

    # 7. Serving many queries?  Bind the market once in a TopRREngine: the
    #    scoring form is computed once and repeated (k, clientele) queries
    #    are answered from a bounded cross-query cache.
    engine = TopRREngine(market)
    for k in (5, 10, 10, 5):  # a session revisiting its settings
        engine.query(k, clientele)
    info = engine.cache_info()
    print(f"  engine session: {info['n_queries']} queries, "
          f"{info['results']['hits']} served from cache")

    # 8. How the caches are keyed: by (k, region *fingerprint*) — the
    #    region's rounded, sorted vertices — so a *different object*
    #    describing the same region hits the same entries.  Both caches are
    #    bounded LRUs; the least recently used entry is evicted when full.
    same_clientele = PreferenceRegion.hyperrectangle(
        [(0.30, 0.36), (0.22, 0.28), (0.18, 0.24)]
    )
    assert engine.query(10, same_clientele) is engine.query(10, clientele)
    print("  cache keys are region fingerprints, not object identities")

    # 9. Anticipating a query mix?  `warm` precomputes the r-skyband
    #    pre-filter (the expensive per-(k, region) intermediate) up front,
    #    and `query_batch` answers many queries in one call — serially by
    #    default, or fanned out with executor="thread" / "process".
    wider = PreferenceRegion.hyperrectangle(
        [(0.28, 0.38), (0.20, 0.30), (0.16, 0.26)]
    )
    computed = engine.warm(ks=[5, 10], regions=[clientele, wider])
    batch = engine.query_batch([(10, clientele), (5, wider), (10, wider)])
    print(f"  warmed {computed} new (k, region) pre-filters; "
          f"batch of {len(batch)} queries answered")

    # 10. Everything above ran the solver on the exact 2-D polygon geometry
    #    backend whenever the preference space is two-dimensional (d = 3
    #    attributes); this 4-attribute market uses the general LP/qhull
    #    path.  The per-solve geometry bill is visible in the stats (use the
    #    last batch entry: it is the one freshly solved in the batch, the
    #    first is a result-cache hit carrying its original solve's stats):
    stats = batch[-1].stats
    print(f"  geometry calls of the last solve: {stats.n_lp_calls} LP, "
          f"{stats.n_qhull_calls} qhull, {stats.n_clip_calls} polygon clips")


if __name__ == "__main__":
    main()
