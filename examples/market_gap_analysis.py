"""Market-gap analysis with composite TopRR queries.

Two advanced uses of the TopRR machinery described in Section 3.1 of the
paper:

1. **A non-convex clientele.**  The manufacturer wants a single product that
   is guaranteed top-5 both for price-sensitive customers *and* for
   quality-focused customers — a union of two separate preference boxes.
   The feasible designs are the intersection of the two per-segment
   top-ranking regions.

2. **Manufacturing constraints.**  The production line cannot build products
   whose total "attribute budget" exceeds a cap; the constraint is
   intersected with the computed region before choosing the cost-optimal
   design.

Run with::

    python examples/market_gap_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import PreferenceRegion, solve_toprr
from repro.core.composite import constrain_result, solve_toprr_union
from repro.core.placement import cheapest_new_option
from repro.data.generators import generate_anticorrelated
from repro.geometry.halfspace import Halfspace


def main() -> None:
    market = generate_anticorrelated(6_000, 3, rng=5)
    market.attribute_names = ["quality", "affordability", "availability"]
    k = 5

    price_sensitive = PreferenceRegion.hyperrectangle([(0.10, 0.18), (0.55, 0.63)])
    quality_focused = PreferenceRegion.hyperrectangle([(0.55, 0.63), (0.10, 0.18)])

    print("=== per-segment analysis ===")
    for label, region in (("price-sensitive", price_sensitive), ("quality-focused", quality_focused)):
        result = solve_toprr(market, k, region)
        print(f"  {label:16s}: |V_all|={result.n_vertices:4d}  volume(oR)={result.volume():.5f}")

    print("\n=== one product for both segments (union of regions) ===")
    both = solve_toprr_union(market, k, [price_sensitive, quality_focused])
    print(f"  combined volume of feasible designs: {both.volume():.5f}")
    placement = cheapest_new_option(both)
    print(f"  cheapest dual-segment design: {np.round(placement.option, 3)} "
          f"(cost {placement.cost:.3f})")

    print("\n=== adding a manufacturing budget (sum of attributes <= 1.9) ===")
    constrained = constrain_result(both, [Halfspace([1.0, 1.0, 1.0], 1.9)])
    if constrained.polytope.is_empty():
        print("  no design satisfies both the ranking guarantee and the budget")
    else:
        budget_placement = cheapest_new_option(constrained)
        print(f"  volume under the budget: {constrained.volume():.5f}")
        print(f"  cheapest constrained design: {np.round(budget_placement.option, 3)} "
              f"(attribute total {budget_placement.option.sum():.3f}, "
              f"cost {budget_placement.cost:.3f})")


if __name__ == "__main__":
    main()
