"""Figure 13 — effect of the optimized region testing (Lemma 7, Section 5.2) on |V_all|."""

import pytest

from repro.experiments.figures import figure13_lemma7


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b")])
def test_fig13_lemma7_vertices(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure13_lemma7, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 13({panel}): |V_all| with Lemma 7 enabled vs disabled, varying {vary}")
    assert all(row["lemma7_enabled"] <= row["lemma7_disabled"] + 1e-9 for row in rows)
