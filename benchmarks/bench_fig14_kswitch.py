"""Figure 14 — effect of the k-switch splitting hyperplane selection (Section 5.3) on |V_all|."""

import numpy as np
import pytest

from repro.experiments.figures import figure14_kswitch


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b")])
def test_fig14_kswitch_vertices(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure14_kswitch, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 14({panel}): |V_all| with k-switch enabled vs disabled, varying {vary}")
    total_enabled = float(np.sum([row["k_switch_enabled"] for row in rows]))
    total_disabled = float(np.sum([row["k_switch_disabled"] for row in rows]))
    # On aggregate the k-switch strategy must not increase the number of vertices.
    assert total_enabled <= total_disabled * 1.1 + 5
