"""Ablation — exact TopRR vs the sampled baseline of Section 2.1.

The paper argues (Section 2.1) that adapting finite-weight-vector methods by
sampling ``wR`` yields inexact answers with no coverage guarantee.  This
benchmark quantifies that: for growing sample counts it reports how often the
sampled region endorses a placement that is not top-ranking throughout
``wR``, alongside the cost of the exact answer.
"""

import pytest

from repro.experiments.ablations import ablation_sampling


def test_ablation_sampling_exactness(benchmark, scale, report):
    rows = benchmark.pedantic(ablation_sampling, args=(scale,), rounds=1, iterations=1)
    report(rows, "Ablation: exact TopRR vs sampled baseline (Section 2.1)")
    # More samples can only help, and the exact method stays guaranteed.
    assert rows[-1]["false_accept_rate"] <= rows[0]["false_accept_rate"] + 1e-9
    assert all(row["exact_is_guaranteed"] for row in rows)
