"""Incremental cache maintenance versus flush-on-mutation.

A long-lived :class:`~repro.engine.TopRREngine` accumulates r-skyband
entries, vertex-score memo rows and full query results.  When the catalogue
mutates, the naive policy flushes everything and pays a cold solve per
distinct query on the next round; :meth:`TopRREngine.apply_delta` instead
keeps every entry the eviction-soundness lemma (:mod:`repro.core.mutation`)
proves untouched, so warm requeries stay warm.

This benchmark warms one engine per arm with ``DISTINCT`` (k, region) pairs,
then runs ``ROUNDS`` churn rounds (insert ``churn * n`` random rows, delete
as many random survivors) at two churn levels:

* ``flush``       — ``apply_delta`` then ``clear_caches()`` (the baseline a
  pre-mutation engine was forced into);
* ``incremental`` — ``apply_delta`` alone, caches maintained in place.

Per arm it records the total requery time across rounds; for the incremental
arm it also records the survivor rate from the engine's mutation accounting.
The parity tripwire is unconditional: after the final round the incremental
engine's answer for every warmed pair must hash (SHA-256 over ``V_all``
bytes) identically to a fresh engine built on the final dataset.

Acceptance bars (asserted at 1% churn): incremental requeries at least
``REPRO_BENCH_MIN_MUTATION_SPEEDUP`` (default 3.0) times faster than flush,
and a cache survivor rate of at least 0.8.

Results are written to ``BENCH_mutation.json``.  Run directly
(``python benchmarks/bench_mutation.py``) or via pytest;
``REPRO_BENCH_SCALE=smoke`` (the default) uses a smaller instance.
"""

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.generators import generate_independent
from repro.engine import TopRREngine
from repro.preference.random_regions import random_hypercube_region

SEED = 7
DISTINCT = 6
ROUNDS = 5
CHURN_LEVELS = (0.01, 0.10)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_mutation.json"


def _workload():
    """Cache-heavy instance: one catalogue, several warm (k, region) pairs."""
    smoke = os.environ.get("REPRO_BENCH_SCALE", "smoke") == "smoke"
    n_options = 2_000 if smoke else 20_000
    dataset = generate_independent(n_options, 3, rng=SEED)
    pairs = [
        (2 + i % 4, random_hypercube_region(3, 0.05, rng=SEED + 1 + i))
        for i in range(DISTINCT)
    ]
    return dataset, pairs, ("smoke" if smoke else "full")


def _min_speedup() -> float:
    """Acceptance bar for incremental vs flush at 1% churn (relaxed via env)."""
    return float(os.environ.get("REPRO_BENCH_MIN_MUTATION_SPEEDUP", "3.0"))


def _vall_hash(result) -> str:
    """SHA-256 of the V_all bytes — the parity tripwire."""
    return hashlib.sha256(result.vertices_reduced.tobytes()).hexdigest()


def _churn_schedule(dataset, churn, rounds):
    """Deterministic churn rounds shared by both arms: same deltas, same ids."""
    rng = np.random.default_rng(SEED + 99)
    schedule, current = [], dataset
    for _ in range(rounds):
        count = max(1, int(round(churn * current.n_options)))
        inserted, delta_in = current.insert_options(
            rng.random((count, current.n_attributes))
        )
        victims = rng.choice(current.option_ids, size=count, replace=False).tolist()
        current, delta_out = inserted.delete_options(option_ids=victims)
        schedule.append([(inserted, delta_in), (current, delta_out)])
    return schedule


def _run_arm(dataset, pairs, schedule, flush):
    """Warm, churn, requery; returns (requery seconds, engine, final dataset)."""
    engine = TopRREngine(dataset, rng=SEED)
    for k, region in pairs:
        engine.query(k, region)
    requery_seconds = 0.0
    current = dataset
    for steps in schedule:
        for current, delta in steps:
            engine.apply_delta(current, delta)
        if flush:
            engine.clear_caches()
        start = time.perf_counter()
        for k, region in pairs:
            engine.query(k, region)
        requery_seconds += time.perf_counter() - start
    return requery_seconds, engine, current


def run_comparison():
    """Time both arms at each churn level and return the record (asserting parity)."""
    dataset, pairs, scale = _workload()
    record = {
        "scale": scale,
        "n_options": dataset.n_options,
        "d": dataset.n_attributes,
        "distinct_pairs": len(pairs),
        "rounds": ROUNDS,
        "churn_levels": {},
    }
    for churn in CHURN_LEVELS:
        schedule = _churn_schedule(dataset, churn, ROUNDS)
        seconds_flush, _flush_engine, _ = _run_arm(dataset, pairs, schedule, flush=True)
        seconds_incremental, engine, final = _run_arm(
            dataset, pairs, schedule, flush=False
        )

        # Parity tripwire: every warmed pair, maintained vs fresh rebuild.
        oracle = TopRREngine(final, rng=SEED)
        for k, region in pairs:
            maintained = _vall_hash(engine.query(k, region))
            fresh = _vall_hash(oracle.query(k, region))
            assert maintained == fresh, (
                f"maintained V_all diverged from fresh rebuild at churn={churn}, "
                f"k={k}: {maintained[:16]} != {fresh[:16]}"
            )

        mutations = engine.cache_info()["mutations"]
        record["churn_levels"][f"{churn:.2f}"] = {
            "churn": churn,
            "seconds_flush": seconds_flush,
            "seconds_incremental": seconds_incremental,
            "speedup_incremental_vs_flush": seconds_flush
            / max(seconds_incremental, 1e-9),
            "survivor_rate": mutations["survivor_rate"],
            "n_deltas": mutations["n_deltas"],
            "n_dominance_tests": mutations["n_dominance_tests"],
            "n_memos_salvaged": mutations["n_memos_salvaged"],
            "vall_sha256": _vall_hash(engine.query(*pairs[0])),
        }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_mutation_maintenance_speedup():
    record = run_comparison()
    for level in record["churn_levels"].values():
        print(
            f"\n[{record['scale']}] n={record['n_options']} churn={level['churn']:.0%}: "
            f"flush {level['seconds_flush'] * 1000:.1f} ms, "
            f"incremental {level['seconds_incremental'] * 1000:.1f} ms "
            f"({level['speedup_incremental_vs_flush']:.1f}x), "
            f"survivor rate {level['survivor_rate']:.2f}, "
            f"{level['n_memos_salvaged']} memos salvaged, "
            f"V_all sha256 {level['vall_sha256'][:16]}…"
        )
    low_churn = record["churn_levels"][f"{CHURN_LEVELS[0]:.2f}"]
    minimum = _min_speedup()
    assert low_churn["speedup_incremental_vs_flush"] >= minimum, (
        f"incremental maintenance only "
        f"{low_churn['speedup_incremental_vs_flush']:.2f}x faster than flush at "
        f"{CHURN_LEVELS[0]:.0%} churn (required {minimum:.2f}x)"
    )
    assert low_churn["survivor_rate"] >= 0.8, (
        f"survivor rate {low_churn['survivor_rate']:.2f} below 0.8 at "
        f"{CHURN_LEVELS[0]:.0%} churn"
    )


if __name__ == "__main__":
    test_mutation_maintenance_speedup()
