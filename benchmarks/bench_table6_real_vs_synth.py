"""Table 6 — TAS* on real datasets vs COR/IND/ANTI of identical cardinality and d."""

from repro.experiments.figures import table6_real_vs_synthetic


def test_table6_real_vs_synthetic(benchmark, scale, report):
    rows = benchmark.pedantic(table6_real_vs_synthetic, args=(scale,), rounds=1, iterations=1)
    report(rows, "Table 6: real-dataset surrogates vs synthetic distributions (TAS*)")
    for row in rows:
        # The paper's observation: real data falls inside the COR...ANTI spectrum,
        # i.e. COR is the cheapest of the synthetic distributions for the same n, d.
        assert row["cor_seconds"] <= row["anti_seconds"] * 1.5
        assert row["real_seconds"] > 0
