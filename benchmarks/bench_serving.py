"""Serving-layer benchmark: concurrent clients, cold vs warm-restored replica.

Boots a real HTTP replica (:func:`repro.serving.start_server_thread` — the
asyncio server on its own event loop) and drives it with concurrent
blocking clients over actual sockets, measuring what the serving tentpole
promises:

* **cold arm** — a fresh replica answers a fixed query mix; every distinct
  ``(k, region)`` pays a full solve, repeats hit the result cache and
  concurrent identical requests coalesce onto one solve;
* **warm arm** — the replica is stopped, its engine caches are persisted
  with :meth:`TopRREngine.save_caches`, and a brand-new replica restores
  them on boot.  The same mix must then be answered entirely from cache
  (first-query hits) with byte-identical result payloads — the
  restore-then-query parity bar, asserted per query.

Per arm it records client-observed p50/p99 latency, the cache hit and
coalescing counts from ``/metrics``, and the wall time of the whole mix.
The acceptance bar is correctness (parity + full warm hit rate), not a
latency ratio — a warm replica answers from an in-process dict, so the
speedup is large but machine-dependent.

Results are written to ``BENCH_serving.json``.  Run directly
(``python benchmarks/bench_serving.py``) or via pytest;
``REPRO_BENCH_SCALE=smoke`` (the default) uses a smaller instance.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.data.generators import generate_independent
from repro.engine import TopRREngine
from repro.serving import EngineRegistry, request_json, start_server_thread

SEED = 7
N_CLIENTS = 8
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _workload():
    """A serving mix: distinct queries plus repeats that exercise the cache."""
    smoke = os.environ.get("REPRO_BENCH_SCALE", "smoke") == "smoke"
    n_options = 1_500 if smoke else 10_000
    distinct = 6 if smoke else 12
    repeats = 3 if smoke else 5
    dataset = generate_independent(n_options, 3, rng=SEED)
    queries = []
    for i in range(distinct):
        lo = 0.1 + 0.04 * i
        queries.append({
            "k": 2 + i % 4,
            "region": {"intervals": [[lo, lo + 0.3], [0.15, 0.45]]},
        })
    mix = queries * repeats  # identical repeats → result-cache hits
    return dataset, queries, mix, ("smoke" if smoke else "full")


def _drive(url, mix):
    """Fire the mix from ``N_CLIENTS`` concurrent clients; return responses."""

    def fire(query):
        status, body = request_json(url, "POST", "/solve", query)
        assert status == 200, body
        return body

    with ThreadPoolExecutor(N_CLIENTS) as pool:
        return list(pool.map(fire, mix))


def _latency_stats(responses):
    latencies = sorted(body["served"]["seconds"] for body in responses)

    def percentile(fraction):
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    return {
        "count": len(latencies),
        "p50_ms": percentile(0.50) * 1000.0,
        "p99_ms": percentile(0.99) * 1000.0,
    }


def _arm_record(responses, metrics):
    entry = metrics["datasets"]["default"]
    return {
        "latency": _latency_stats(responses),
        "n_cache_hits": sum(1 for b in responses if b["served"]["cache_hit"]),
        "n_coalesced": entry["n_coalesced"],
        "engine_result_cache": {
            "hits": entry["cache"]["results"]["hits"],
            "misses": entry["cache"]["results"]["misses"],
        },
    }


def run_comparison():
    """Cold mix, snapshot, warm-restored mix; returns the record."""
    dataset, queries, mix, scale = _workload()
    record = {
        "scale": scale,
        "n_options": dataset.n_options,
        "d": dataset.n_attributes,
        "distinct_queries": len(queries),
        "total_requests": len(mix),
        "n_clients": N_CLIENTS,
    }

    with TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "caches.json"

        # ---- cold arm: fresh replica, every distinct query pays a solve
        engine = TopRREngine(dataset, rng=SEED)
        registry = EngineRegistry()
        registry.add("default", engine)
        handle = start_server_thread(registry)
        try:
            start = time.perf_counter()
            cold_responses = _drive(handle.url, mix)
            cold_wall = time.perf_counter() - start
            _status, cold_metrics = request_json(handle.url, "GET", "/metrics")
            engine.save_caches(snapshot)
        finally:
            handle.stop()
        record["cold"] = dict(_arm_record(cold_responses, cold_metrics),
                              wall_seconds=cold_wall)
        record["snapshot_bytes"] = snapshot.stat().st_size

        # ---- warm arm: new process-equivalent replica restored from disk
        engine2 = TopRREngine(dataset, rng=SEED)
        restored = engine2.load_caches(snapshot)
        registry2 = EngineRegistry()
        registry2.add("default", engine2)
        handle2 = start_server_thread(registry2)
        try:
            start = time.perf_counter()
            warm_responses = _drive(handle2.url, mix)
            warm_wall = time.perf_counter() - start
            _status, warm_metrics = request_json(handle2.url, "GET", "/metrics")
        finally:
            handle2.stop()
        record["warm"] = dict(_arm_record(warm_responses, warm_metrics),
                              wall_seconds=warm_wall,
                              restored_entries=restored)

    # Parity tripwire: the warm replica's payload for every query must be
    # byte-identical to the cold replica's (JSON floats are exact).
    cold_by_query = {}
    for query, body in zip(mix, cold_responses):
        cold_by_query[json.dumps(query, sort_keys=True)] = body["result"]
    for query, body in zip(mix, warm_responses):
        expected = cold_by_query[json.dumps(query, sort_keys=True)]
        assert body["result"] == expected, (
            f"warm-restored replica diverged on {query}"
        )
    record["parity"] = "byte-identical"
    record["cold_vs_warm_p50_speedup"] = (
        record["cold"]["latency"]["p50_ms"]
        / max(record["warm"]["latency"]["p50_ms"], 1e-9)
    )

    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_serving_cold_vs_warm_restore():
    record = run_comparison()
    print(
        f"\n[{record['scale']}] n={record['n_options']} "
        f"{record['total_requests']} requests x {record['n_clients']} clients: "
        f"cold p50 {record['cold']['latency']['p50_ms']:.1f} ms "
        f"(p99 {record['cold']['latency']['p99_ms']:.1f} ms, "
        f"{record['cold']['n_cache_hits']} hits, "
        f"{record['cold']['n_coalesced']} coalesced), "
        f"warm p50 {record['warm']['latency']['p50_ms']:.2f} ms "
        f"(p99 {record['warm']['latency']['p99_ms']:.2f} ms, "
        f"{record['warm']['n_cache_hits']} hits), "
        f"snapshot {record['snapshot_bytes'] / 1024:.0f} KiB, parity {record['parity']}"
    )
    # The warm replica must answer the whole mix from restored caches.
    assert record["warm"]["n_cache_hits"] == record["total_requests"], (
        f"warm replica only hit on {record['warm']['n_cache_hits']} of "
        f"{record['total_requests']} requests — the snapshot restore is leaky"
    )
    # And the cold replica must have coalesced or cache-hit the repeats.
    reused = record["cold"]["n_cache_hits"] + record["cold"]["n_coalesced"]
    assert reused >= record["total_requests"] - record["distinct_queries"], (
        f"cold replica re-solved repeated queries: only {reused} reused of "
        f"{record['total_requests'] - record['distinct_queries']} repeats"
    )


if __name__ == "__main__":
    test_serving_cold_vs_warm_restore()
