"""Figure 10 — TAS* robustness across data distributions (COR / IND / ANTI)."""

import numpy as np
import pytest

from repro.experiments.figures import figure10_distributions


def _total_seconds(rows, distribution):
    return float(np.sum([row["seconds"] for row in rows if row["distribution"] == distribution]))


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b"), ("n", "c"), ("d", "d")])
def test_fig10_distributions(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure10_distributions, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 10({panel}): TAS* on COR/IND/ANTI varying {vary}")
    # ANTI is the hardest distribution (largest r-skyband), COR the easiest.
    assert _total_seconds(rows, "COR") <= _total_seconds(rows, "ANTI") * 1.5
