"""Figure 9 — PAC vs TAS vs TAS* while varying k, sigma, n and d.

The paper's headline comparison: TAS* beats TAS, and both beat PAC by up to
two orders of magnitude.  Each benchmark regenerates one panel of Figure 9
and asserts the qualitative ordering (TAS* never slower than PAC on average,
and never producing more V_all vertices than TAS).
"""

import numpy as np
import pytest

from repro.experiments.figures import figure9_methods


def _total_seconds(rows, method):
    return float(np.sum([row["seconds"] for row in rows if row["method"] == method]))


def _total_vertices(rows, method):
    return float(np.sum([row["n_vertices"] for row in rows if row["method"] == method]))


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b"), ("n", "c"), ("d", "d")])
def test_fig9_method_comparison(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure9_methods, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 9({panel}): PAC vs TAS vs TAS* varying {vary}")
    assert _total_seconds(rows, "TAS*") <= _total_seconds(rows, "PAC") * 1.05
    assert _total_vertices(rows, "TAS*") <= _total_vertices(rows, "TAS") + 1e-9
