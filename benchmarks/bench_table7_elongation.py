"""Table 7 — effect of the preference-region elongation factor gamma on TAS*."""

import numpy as np

from repro.experiments.figures import table7_elongation


def test_table7_elongation(benchmark, scale, report):
    rows = benchmark.pedantic(table7_elongation, args=(scale,), rounds=1, iterations=1)
    report(rows, "Table 7: wR elongation (equal volume, one side stretched by gamma)")
    # The paper's finding: TAS* is not significantly affected by elongation.
    for dataset in ("hotel", "house", "nba"):
        seconds = np.array([row[f"{dataset}_seconds"] for row in rows])
        assert seconds.max() <= max(10.0 * seconds.min(), seconds.min() + 5.0)
