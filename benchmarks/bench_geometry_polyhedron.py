"""Exact 3-D polyhedron backend versus the LP/qhull geometry path.

The d=4 sibling of ``bench_geometry_backend.py``: in 3-D preference space —
the paper's second headline setting (``d = 4`` attributes) — the polyhedron
backend answers the per-region Chebyshev/feasibility question and the
vertex enumeration in closed form, where the reference path pays a scipy
``linprog`` round trip plus a qhull halfspace intersection per region.

Two arms, both asserting **bit-identical** results:

* ``per_region`` — a split cascade microbenchmark isolating the geometry
  cost: starting from the unit cube, regions are repeatedly split by
  hyperplanes and every child pays one full geometry round
  (full-dimensionality verdict + vertex enumeration).  The per-region time
  ratio is the headline number and must reach
  ``REPRO_BENCH_MIN_GEOM3D_SPEEDUP`` (default 1.5; in practice much more).
* ``end_to_end`` — a complete TAS* solve on an anti-correlated ``d = 4``
  instance per backend, asserting bit-identical ``V_all``, zero
  ``linprog``/qhull calls on the polyhedron arm, and reporting the
  whole-solve speedup.

Results are written to ``BENCH_geometry3d.json`` (schema documented in
``benchmarks/README.md``) so CI can archive the trajectory; CI additionally
trips on any non-zero ``n_lp_calls`` / ``n_qhull_calls`` recorded in it
(backend-dispatch regression tripwire).  Run directly
(``python benchmarks/bench_geometry_polyhedron.py``) or via pytest;
``REPRO_BENCH_SCALE=smoke`` (the default) shrinks both arms.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.stats import SolverStats
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated
from repro.geometry.counters import geometry_counters
from repro.geometry.hyperplane import Hyperplane
from repro.geometry.polytope import use_backend
from repro.preference.region import PreferenceRegion

SEED = 17
RNG = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_geometry3d.json"


def _scale() -> str:
    return "smoke" if os.environ.get("REPRO_BENCH_SCALE", "smoke") == "smoke" else "full"


def _min_speedup() -> float:
    """Per-region geometry acceptance bar (relaxable in CI via env)."""
    return float(os.environ.get("REPRO_BENCH_MIN_GEOM3D_SPEEDUP", "1.5"))


def _cascade_hyperplanes(n_cuts: int) -> list:
    """A reproducible set of cutting hyperplanes through the unit cube."""
    rng = np.random.default_rng(SEED)
    hyperplanes = []
    for _ in range(n_cuts):
        normal = rng.normal(size=3)
        offset = float(normal @ rng.uniform(0.2, 0.8, size=3))
        hyperplanes.append(Hyperplane(normal, offset))
    return hyperplanes


def _run_cascade(backend: str, hyperplanes) -> tuple:
    """Split-cascade microbenchmark on one backend.

    Every produced child pays the full per-region geometry bill the solvers
    pay: an emptiness / full-dimensionality verdict and (for surviving
    children) vertex enumeration.  Returns the region count, the
    accumulated vertex bytes (for the parity assert) and the elapsed
    seconds.
    """
    from repro.geometry.polytope import ConvexPolytope

    digests = []
    n_regions = 0
    start = time.perf_counter()
    frontier = [ConvexPolytope.from_box([0.0] * 3, [1.0] * 3, backend=backend)]
    for hyperplane in hyperplanes:
        next_frontier = []
        for polytope in frontier:
            for child in polytope.split(hyperplane):
                n_regions += 1
                if child.is_empty() or not child.is_full_dimensional():
                    continue
                digests.append(child.vertices.tobytes())
                next_frontier.append(child)
        # Keep the frontier bounded so the cascade stays geometry-shaped
        # (deep, narrow) rather than exploding exponentially.
        next_frontier.sort(key=lambda p: -p.chebyshev_radius)
        frontier = next_frontier[:8]
    elapsed = time.perf_counter() - start
    return n_regions, digests, elapsed


def _run_solve(backend: str, dataset, k, intervals) -> tuple:
    """One full TAS* solve with the region built on ``backend``."""
    if backend == "qhull":
        with use_backend("qhull"):
            region = PreferenceRegion.hyperrectangle(intervals)
    else:
        region = PreferenceRegion.hyperrectangle(intervals)
    solver = TASStarSolver(rng=RNG)
    stats = SolverStats()
    start = time.perf_counter()
    vall = solver.partition(dataset, k, region, stats=stats)
    return vall, stats, time.perf_counter() - start


def run_comparison():
    """Time both arms on both backends and return the result record."""
    scale = _scale()
    n_cuts = 30 if scale == "smoke" else 90
    n_options = 2_000 if scale == "smoke" else 20_000
    k = 5 if scale == "smoke" else 8

    hyperplanes = _cascade_hyperplanes(n_cuts)
    geometry_counters.reset()
    regions_poly, digests_poly, seconds_poly = _run_cascade("polyhedron", hyperplanes)
    cascade_counters = geometry_counters.snapshot()
    regions_qhull, digests_qhull, seconds_qhull = _run_cascade("qhull", hyperplanes)

    assert regions_poly == regions_qhull, "backends explored different cascades"
    assert digests_poly == digests_qhull, "cascade vertices are not bit-identical"
    assert cascade_counters.n_lp_calls == 0, "polyhedron cascade performed LP calls"
    assert cascade_counters.n_qhull_calls == 0, "polyhedron cascade performed qhull calls"

    per_region_poly = seconds_poly / max(regions_poly, 1)
    per_region_qhull = seconds_qhull / max(regions_qhull, 1)

    dataset = generate_anticorrelated(n_options, 4, rng=SEED)
    intervals = [(0.24, 0.28), (0.24, 0.28), (0.24, 0.28)]
    vall_poly, stats_poly, solve_poly = _run_solve("polyhedron", dataset, k, intervals)
    vall_qhull, stats_qhull, solve_qhull = _run_solve("qhull", dataset, k, intervals)

    assert np.array_equal(vall_poly, vall_qhull), "solver V_all differs across backends"
    assert stats_poly.n_lp_calls == 0, "polyhedron solve performed LP calls"
    assert stats_poly.n_qhull_calls == 0, "polyhedron solve performed qhull calls"

    record = {
        "scale": scale,
        "per_region": {
            "n_regions": regions_poly,
            "seconds_polyhedron": seconds_poly,
            "seconds_qhull": seconds_qhull,
            "us_per_region_polyhedron": per_region_poly * 1e6,
            "us_per_region_qhull": per_region_qhull * 1e6,
            "speedup": per_region_qhull / max(per_region_poly, 1e-12),
            "n_lp_calls": cascade_counters.n_lp_calls,
            "n_qhull_calls": cascade_counters.n_qhull_calls,
            "n_clip_calls": cascade_counters.n_clip_calls,
        },
        "end_to_end": {
            "n_options": dataset.n_options,
            "k": k,
            "n_regions_tested": stats_poly.n_regions_tested,
            "n_splits": stats_poly.n_splits,
            "n_vertices": int(vall_poly.shape[0]),
            "vertex_cache_hit_rate": stats_poly.vertex_cache_hit_rate,
            "seconds_polyhedron": solve_poly,
            "seconds_qhull": solve_qhull,
            "speedup": solve_qhull / max(solve_poly, 1e-9),
            "n_lp_calls": stats_poly.n_lp_calls,
            "n_qhull_calls": stats_poly.n_qhull_calls,
            "n_lp_calls_qhull": stats_qhull.n_lp_calls,
            "n_qhull_calls_qhull": stats_qhull.n_qhull_calls,
            "n_clip_calls_polyhedron": stats_poly.n_clip_calls,
        },
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_polyhedron_backend_speedup_and_parity():
    record = run_comparison()
    per_region = record["per_region"]
    end_to_end = record["end_to_end"]
    print(
        f"\n[{record['scale']}] cascade: {per_region['n_regions']} regions, "
        f"polyhedron {per_region['us_per_region_polyhedron']:.0f}us/region vs "
        f"qhull {per_region['us_per_region_qhull']:.0f}us/region "
        f"({per_region['speedup']:.1f}x)"
    )
    print(
        f"end-to-end TAS* (n={end_to_end['n_options']}, k={end_to_end['k']}, "
        f"{end_to_end['n_regions_tested']} regions): "
        f"polyhedron {end_to_end['seconds_polyhedron']:.2f}s vs "
        f"qhull {end_to_end['seconds_qhull']:.2f}s ({end_to_end['speedup']:.2f}x); "
        f"lp calls {end_to_end['n_lp_calls']} vs {end_to_end['n_lp_calls_qhull']}"
    )
    minimum = _min_speedup()
    assert per_region["speedup"] >= minimum, (
        f"polyhedron backend only {per_region['speedup']:.2f}x faster per region "
        f"(required {minimum:.2f}x)"
    )


if __name__ == "__main__":
    test_polyhedron_backend_speedup_and_parity()
