"""Figure 7 — case study: introducing a new laptop for two target clienteles."""

from repro.experiments.figures import figure7_case_study


def test_fig7_case_study(benchmark, scale, report):
    rows = benchmark(figure7_case_study, scale)
    report(rows, "Figure 7: cost-optimal laptop placement (k=3)")
    assert len(rows) == 2
    assert all(row["cost"] > 0 for row in rows)
