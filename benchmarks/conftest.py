"""Shared configuration for the benchmark suite.

Each benchmark target regenerates one figure or table of the paper's
evaluation section through the harness in :mod:`repro.experiments.figures`.
The scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` by default so that ``pytest benchmarks/ --benchmark-only``
completes in minutes on a laptop; set it to ``scaled`` or ``paper`` for
larger runs).  Every benchmark prints the rows it measured, so the benchmark
log doubles as the reproduction of the figure's data series.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import Scale  # noqa: E402
from repro.experiments.reporting import format_table  # noqa: E402


def bench_scale() -> Scale:
    """Scale used by the benchmark suite (``REPRO_BENCH_SCALE``, default smoke)."""
    return Scale.parse(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Session-wide benchmark scale."""
    return bench_scale()


@pytest.fixture(scope="session")
def report():
    """Helper that pretty-prints the rows produced by an experiment runner."""

    def _report(rows, title):
        print()
        print(format_table(rows, title=title))
        return rows

    return _report
