"""Figure 11 — TAS* on the real-dataset surrogates (HOTEL, HOUSE, NBA)."""

import pytest

from repro.experiments.figures import figure11_real


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b")])
def test_fig11_real_datasets(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure11_real, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 11({panel}): TAS* on real-dataset surrogates varying {vary}")
    datasets = {row["dataset"] for row in rows}
    assert datasets == {"HOTEL", "HOUSE", "NBA"}
    assert all(row["seconds"] > 0 for row in rows)
