"""Engine-cached batch queries versus per-call ``solve_toprr``.

The scenario the :class:`repro.engine.TopRREngine` exists for: one dataset,
a session of many related queries (an analyst revisiting a handful of
``(k, region)`` combinations, a serving layer with a skewed query mix).  The
benchmark issues the same 50-query batch — ``N_DISTINCT`` distinct pairs
cycled round-robin — twice:

* sequentially, one :func:`repro.core.toprr.solve_toprr` call per query
  (every call re-filters and re-solves from scratch), and
* through one engine with its r-skyband and result caches enabled.

The acceptance bar of the refactor is a >= 3x end-to-end speedup for the
engine path; on a warm cache the repeated queries are LRU lookups, so the
observed factor is usually close to the repeat rate (5x here).

Run directly (``python benchmarks/bench_engine_batch.py``) or via pytest.
"""

import time

import numpy as np

from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.engine import TopRREngine
from repro.preference.random_regions import random_hypercube_region

N_QUERIES = 50
N_DISTINCT = 10
N_OPTIONS = 4_000
N_ATTRIBUTES = 3
K_MAX = 8
SIGMA = 0.05
SEED = 29
#: Acceptance bar: engine-served batch must be at least this much faster.
MIN_SPEEDUP = 3.0


def build_session():
    """The dataset and the 50-query mix (10 distinct pairs, cycled)."""
    dataset = generate_independent(N_OPTIONS, N_ATTRIBUTES, rng=SEED)
    distinct = [
        (
            1 + (SEED + i) % K_MAX,
            random_hypercube_region(N_ATTRIBUTES, SIGMA, rng=SEED + 1 + i),
        )
        for i in range(N_DISTINCT)
    ]
    queries = [distinct[i % N_DISTINCT] for i in range(N_QUERIES)]
    return dataset, queries


def run_comparison():
    """Time both paths; returns (sequential_s, engine_s, results_seq, results_eng)."""
    dataset, queries = build_session()

    start = time.perf_counter()
    sequential = [solve_toprr(dataset, k, region) for k, region in queries]
    sequential_seconds = time.perf_counter() - start

    engine = TopRREngine(dataset)
    start = time.perf_counter()
    served = engine.query_batch(queries)
    engine_seconds = time.perf_counter() - start

    return sequential_seconds, engine_seconds, sequential, served, engine


def test_engine_batch_speedup_and_parity():
    sequential_seconds, engine_seconds, sequential, served, engine = run_comparison()
    speedup = sequential_seconds / max(engine_seconds, 1e-9)
    info = engine.cache_info()
    print(
        f"\n{N_QUERIES} queries ({N_DISTINCT} distinct): "
        f"sequential {sequential_seconds:.2f}s, engine {engine_seconds:.2f}s, "
        f"speedup {speedup:.1f}x"
    )
    print(f"result cache: {info['results']}")
    print(f"r-skyband cache: {info['skyband']}")

    # Same answers, query by query.
    probes = np.random.default_rng(0).random((200, N_ATTRIBUTES))
    for reference, result in zip(sequential, served):
        assert result.n_vertices == reference.n_vertices
        assert np.array_equal(result.contains_many(probes), reference.contains_many(probes))

    assert info["results"]["hits"] == N_QUERIES - N_DISTINCT
    assert speedup >= MIN_SPEEDUP, (
        f"engine batch only {speedup:.2f}x faster than sequential solve_toprr "
        f"(required {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_engine_batch_speedup_and_parity()
