"""Figure 8 — trade-off between the four pre-filters (retained options vs time)."""

from repro.experiments.figures import figure8_filter_tradeoff


def test_fig8_filter_tradeoff(benchmark, scale, report):
    rows = benchmark(figure8_filter_tradeoff, scale)
    report(rows, "Figure 8: pre-filter trade-offs (normalised |D'| vs time)")
    by_name = {row["filter"]: row for row in rows}
    # The r-skyband must retain no more options than the region-agnostic filters,
    # and UTK is the tightest of all (the paper's motivation for choosing r-skyband).
    assert by_name["r-skyband"]["retained"] <= by_name["k-skyband"]["retained"]
    assert by_name["utk"]["retained"] <= by_name["r-skyband"]["retained"]
