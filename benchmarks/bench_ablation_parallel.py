"""Ablation — parallel TAS* over a chopped preference region (Section 7 future work)."""

import pytest

from repro.experiments.ablations import ablation_parallel


def test_ablation_parallel_solving(benchmark, scale, report):
    rows = benchmark.pedantic(
        ablation_parallel, args=(scale,), kwargs={"worker_counts": (1, 2)}, rounds=1, iterations=1
    )
    report(rows, "Ablation: sequential vs parallel TAS* (chopped wR)")
    # Parallelism must never change the answer; speed-ups depend on the scale
    # (process start-up dominates at smoke scale) and are reported, not asserted.
    assert all(row["answers_match"] for row in rows)
