"""Figure 12 — pruning power of consistent top-λ options (Lemma 5, Section 5.1)."""

import pytest

from repro.experiments.figures import figure12_lemma5


@pytest.mark.parametrize("vary,panel", [("k", "a"), ("sigma", "b")])
def test_fig12_lemma5_pruning(benchmark, scale, report, vary, panel):
    rows = benchmark.pedantic(figure12_lemma5, args=(vary, scale), rounds=1, iterations=1)
    report(rows, f"Figure 12({panel}): |D'| with r-skyband vs r-skyband + Lemma 5, varying {vary}")
    assert all(row["r_skyband_lemma5"] <= row["r_skyband"] for row in rows)
