"""Ablation — per-dataset pre-computation for repeated TopRR queries (Section 7 future work)."""

import pytest

from repro.experiments.ablations import ablation_precompute


def test_ablation_precompute_repeated_queries(benchmark, scale, report):
    rows = benchmark.pedantic(ablation_precompute, args=(scale,), rounds=1, iterations=1)
    report(rows, "Ablation: direct solves vs precomputed skyband + result cache")
    direct, precomputed = rows
    assert precomputed["answers_match"]
    # The precomputed candidate set must be a strict subset of the dataset.
    assert precomputed["candidate_options"] < direct["candidate_options"]
    # Query time (excluding the one-off build) must not regress.
    assert precomputed["query_seconds"] <= direct["query_seconds"] * 1.25
