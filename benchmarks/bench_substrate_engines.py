"""Substrate — access-cost profile of the top-k engines (Section 2 building blocks)."""

import pytest

from repro.experiments.ablations import substrate_engines


def test_substrate_topk_engines(benchmark, scale, report):
    rows = benchmark.pedantic(substrate_engines, args=(scale,), rounds=1, iterations=1)
    report(rows, "Substrate: full scan vs branch-and-bound vs threshold algorithm")
    assert all(row["agrees_with_reference"] for row in rows)
    by_engine = {row["engine"]: row for row in rows}
    # The early-terminating engines must touch only a fraction of the data.
    assert by_engine["threshold algorithm (sorted lists)"]["touched_fraction"] < 1.0
