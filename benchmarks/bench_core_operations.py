"""Micro-benchmarks of the core building blocks (not tied to a specific figure).

These complement the per-figure benchmarks by timing the individual
primitives whose costs dominate TopRR processing: the r-skyband filter, the
kIPR vertex test, one region split, and a full TAS* solve at the default
(smoke/scaled) parameters.  They are the numbers to watch when optimising
the implementation.
"""

import numpy as np
import pytest

from repro.core.kipr import WorkingSet, find_kipr_violation, region_profiles
from repro.core.profiles import RegionProfiles
from repro.core.splitting import split_region
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.experiments.config import defaults
from repro.preference.random_regions import random_hypercube_region
from repro.pruning.rskyband import r_skyband


@pytest.fixture(scope="module")
def instance(scale):
    base = defaults(scale)
    n = min(base.n_options, 20_000)
    dataset = generate_independent(n, base.n_attributes, rng=base.seed)
    region = random_hypercube_region(base.n_attributes, base.sigma, rng=base.seed + 1)
    return dataset, base.k, region


def test_bench_r_skyband_filter(benchmark, instance):
    dataset, k, region = instance
    indices = benchmark(r_skyband, dataset, k, region)
    assert len(indices) >= k


def test_bench_kipr_test(benchmark, instance):
    dataset, k, region = instance
    filtered = dataset.subset(r_skyband(dataset, k, region))
    working = WorkingSet.from_dataset(filtered, k)

    def run():
        profiles = region_profiles(working, region)
        return find_kipr_violation(profiles)

    benchmark(run)


def test_bench_kipr_test_vectorized(benchmark, instance):
    """The array-backed kernel on the same instance as the per-vertex bench above."""
    dataset, k, region = instance
    filtered = dataset.subset(r_skyband(dataset, k, region))
    working = WorkingSet.from_dataset(filtered, k)
    vertices = region.vertices

    def run():
        profiles = RegionProfiles.compute(working, vertices)
        return profiles.kipr_violation()

    benchmark(run)


def test_bench_single_split(benchmark, instance):
    dataset, k, region = instance
    filtered = dataset.subset(r_skyband(dataset, k, region))
    working = WorkingSet.from_dataset(filtered, k)
    profiles = region_profiles(working, region)
    violation = find_kipr_violation(profiles)
    if violation is None:
        pytest.skip("default region happens to be a kIPR; nothing to split")
    below, above, _, found = benchmark(
        split_region, region, working, profiles, violation
    )
    assert found and below is not None and above is not None


def test_bench_tas_star_end_to_end(benchmark, instance):
    dataset, k, region = instance
    result = benchmark(solve_toprr, dataset, k, region, method="tas*")
    assert result.n_vertices > 0


def test_bench_membership_queries(benchmark, instance):
    dataset, k, region = instance
    result = solve_toprr(dataset, k, region, method="tas*")
    probes = np.random.default_rng(0).random((10_000, dataset.n_attributes))
    mask = benchmark(result.contains_many, probes)
    assert mask.shape == (10_000,)
