"""Option-space sharded pre-filter versus the serial solve.

On large catalogues the r-skyband pre-filter — an ``O(n)``-iteration Python
loop over sorted score rows — dominates the end-to-end TopRR time (roughly
90% of it at ``n = 60_000`` on independent data), and it is exactly the stage
the sharded path (:mod:`repro.core.sharded`) runs process-parallel against a
shared-memory score matrix.  This benchmark times three arms on the same
filter-heavy instance:

* ``unsharded``       — :func:`repro.core.toprr.solve_toprr` (the baseline);
* ``sharded-serial``  — the sharded pipeline (shard plans, per-shard filter,
  cross-shard reconciliation) run in-process: measures the sharding overhead
  with zero parallelism;
* ``sharded-process`` — one process-pool task per shard attaching to the
  shared score matrix (the production configuration).

All three arms must produce byte-identical ``V_all`` (compared by SHA-256
below, and bit-for-bit by ``tests/test_sharded_differential.py``) — that
tripwire is asserted unconditionally.  The speedup bar —
``sharded-process`` at least ``REPRO_BENCH_MIN_SHARDED_SPEEDUP`` (default
2.0) times faster than ``unsharded`` — is only asserted when the machine has
at least 4 CPU cores: pool startup plus matrix publication cost real time,
so a single-core container (like the CI smoke lane) can only validate
correctness and record the trajectory, not demonstrate parallel speedup.

Results are written to ``BENCH_sharded.json``.  Run directly
(``python benchmarks/bench_sharded.py``) or via pytest;
``REPRO_BENCH_SCALE=smoke`` (the default) uses a smaller instance, any other
value runs the full ``n = 60_000`` workload.
"""

import hashlib
import json
import os
import time
from pathlib import Path

from repro.core.sharded import solve_toprr_sharded
from repro.core.toprr import solve_toprr
from repro.data.generators import generate_independent
from repro.preference.region import PreferenceRegion

SEED = 7
N_SHARDS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def _workload():
    """Filter-heavy instance: independent options, large n, small skyband."""
    smoke = os.environ.get("REPRO_BENCH_SCALE", "smoke") == "smoke"
    n_options = 8_000 if smoke else 60_000
    k = 12
    dataset = generate_independent(n_options, 3, rng=SEED)
    region = PreferenceRegion.hyperrectangle([(0.31, 0.38), (0.31, 0.38)])
    return dataset, k, region, ("smoke" if smoke else "full")


def _min_speedup() -> float:
    """Acceptance bar for sharded-process vs unsharded (relaxed via env)."""
    return float(os.environ.get("REPRO_BENCH_MIN_SHARDED_SPEEDUP", "2.0"))


def _vall_hash(result) -> str:
    """SHA-256 of the V_all bytes — the cross-arm parity tripwire."""
    return hashlib.sha256(result.vertices_reduced.tobytes()).hexdigest()


def _time_arm(solve):
    start = time.perf_counter()
    result = solve()
    return result, time.perf_counter() - start


def run_comparison():
    """Time the three arms and return the result record (asserting parity)."""
    dataset, k, region, scale = _workload()

    unsharded, seconds_unsharded = _time_arm(lambda: solve_toprr(dataset, k, region))
    serial, seconds_serial = _time_arm(
        lambda: solve_toprr_sharded(dataset, k, region, n_shards=N_SHARDS, executor="serial")
    )
    process, seconds_process = _time_arm(
        lambda: solve_toprr_sharded(dataset, k, region, n_shards=N_SHARDS, executor="process")
    )

    hashes = {
        "unsharded": _vall_hash(unsharded),
        "sharded_serial": _vall_hash(serial),
        "sharded_process": _vall_hash(process),
    }
    assert len(set(hashes.values())) == 1, f"V_all diverged across arms: {hashes}"

    record = {
        "scale": scale,
        "n_options": dataset.n_options,
        "k": k,
        "n_shards": N_SHARDS,
        "cpu_count": os.cpu_count(),
        "n_filtered": serial.stats.n_filtered_options,
        "n_vertices": serial.n_vertices,
        "vall_sha256": hashes["unsharded"],
        "seconds_unsharded": seconds_unsharded,
        "seconds_sharded_serial": seconds_serial,
        "seconds_sharded_process": seconds_process,
        "speedup_process_vs_unsharded": seconds_unsharded / max(seconds_process, 1e-9),
        "speedup_serial_vs_unsharded": seconds_unsharded / max(seconds_serial, 1e-9),
        "merge_seconds": process.stats.merge_seconds,
        "shard_seconds": process.stats.extra.get("shard_seconds"),
        "shard_candidates": process.stats.extra.get("shard_candidates"),
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_sharded_parity_and_speedup():
    record = run_comparison()
    print(
        f"\n[{record['scale']}] n={record['n_options']} k={record['k']} "
        f"shards={record['n_shards']} cores={record['cpu_count']}: "
        f"unsharded {record['seconds_unsharded']:.2f}s, "
        f"sharded-serial {record['seconds_sharded_serial']:.2f}s, "
        f"sharded-process {record['seconds_sharded_process']:.2f}s"
    )
    print(
        f"process speedup {record['speedup_process_vs_unsharded']:.2f}x "
        f"(serial overhead check {record['speedup_serial_vs_unsharded']:.2f}x); "
        f"V_all sha256 {record['vall_sha256'][:16]}…, "
        f"merge {record['merge_seconds'] * 1000:.2f} ms"
    )
    # serial sharding must not regress the solve badly: it adds only the
    # reconciliation pass over the (small) candidate union
    assert record["speedup_serial_vs_unsharded"] > 0.5, "sharding overhead exploded"
    cores = os.cpu_count() or 1
    if cores >= 4:
        minimum = _min_speedup()
        assert record["speedup_process_vs_unsharded"] >= minimum, (
            f"sharded-process only {record['speedup_process_vs_unsharded']:.2f}x faster "
            f"than unsharded on {cores} cores (required {minimum:.2f}x)"
        )
    else:
        print(f"only {cores} CPU core(s): parity asserted, speedup bar skipped")


if __name__ == "__main__":
    test_sharded_parity_and_speedup()
