"""Incremental split-tree scoring versus the PR-1 per-region kernel.

The PR-1 kernel rescored the full ``(n_vertices, n_active)`` matrix of every
popped region, even though a split child shares almost all vertices with its
parent (and the cut vertices with its sibling), and fell back to a full
batched ``lexsort`` over all active options whenever a score tie straddled
the k-boundary — the common case on anti-correlated data.  This benchmark
times a split-heavy TAS* solve (large ``n``, large ``k``, anti-correlated
options, no pre-filter so the kernel dominates) in three configurations:

* ``pr1``      — from-scratch per-region testing with the PR-1 kernel,
  reconstructed exactly (its ``topk_order_matrix`` is monkeypatched in: the
  ``argpartition`` screen that declines whole batches on boundary ties,
  followed by the full-width batched lexsort);
* ``scratch``  — from-scratch per-region testing with the current kernel
  (per-row tie resolution, select-then-sort exact fallback);
* ``incremental`` — the split-tree vertex-score memo with frontier batching
  (``incremental=True``, the default).

``V_all`` must be bit-identical across all three arms — the memo and the
kernel rework are pure reuse, never approximation.  The acceptance bar is
``incremental`` at least ``REPRO_BENCH_MIN_SPEEDUP`` (default 1.8) times
faster than ``pr1``; the ``incremental``-vs-``scratch`` ratio isolates the
memo's own contribution and is reported alongside.  Results, including the
vertex-score cache hit rate from :class:`~repro.core.stats.SolverStats`, are
written to ``BENCH_split_tree.json`` so CI can archive the trajectory.

Run directly (``python benchmarks/bench_split_tree_incremental.py``) or via
pytest.  ``REPRO_BENCH_SCALE=smoke`` (the default) uses a smaller instance;
any other scale runs the full-size workload.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

import repro.core.profiles as profiles_mod
from repro.core.profiles import _PARTITION_MIN_ACTIVE, _topk_order_partition
from repro.core.stats import SolverStats
from repro.core.tas_star import TASStarSolver
from repro.data.generators import generate_anticorrelated
from repro.preference.region import PreferenceRegion

SEED = 7
RNG = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_split_tree.json"


def _workload():
    """Split-heavy instance: anti-correlated options, large n and k, no filter."""
    smoke = os.environ.get("REPRO_BENCH_SCALE", "smoke") == "smoke"
    n_options = 8_000 if smoke else 60_000
    k = 10 if smoke else 12
    dataset = generate_anticorrelated(n_options, 3, rng=SEED)
    region = PreferenceRegion.hyperrectangle([(0.31, 0.38), (0.31, 0.38)])
    return dataset, k, region, ("smoke" if smoke else "full")


def _min_speedup() -> float:
    """Acceptance bar versus the PR-1 kernel (relaxed in CI via env)."""
    return float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.8"))


def _pr1_topk_order_matrix(scores, ids, k):
    """The PR-1 kernel's top-k ordering, reconstructed exactly.

    ``argpartition`` screen that declines the *whole batch* when any row has
    a tie straddling the k-boundary, then the full-width batched lexsort.
    """
    n = scores.shape[1]
    k = min(k, n)
    if k == 0 or scores.shape[0] == 0:
        return np.empty((scores.shape[0], k), dtype=ids.dtype)
    if n >= _PARTITION_MIN_ACTIVE and n > 4 * k:
        ordered = _topk_order_partition(scores, ids, k)
        if ordered is not None:
            return ordered
    keys = np.broadcast_to(ids, scores.shape)
    order = np.lexsort((keys, -scores), axis=-1)[:, :k]
    return ids[order]


def _solve(dataset, k, region, incremental, pr1_kernel=False):
    """One timed solve; returns ``(V_all, stats, seconds)``."""
    saved = profiles_mod.topk_order_matrix
    if pr1_kernel:
        profiles_mod.topk_order_matrix = _pr1_topk_order_matrix
    try:
        solver = TASStarSolver(rng=RNG, incremental=incremental)
        stats = SolverStats()
        start = time.perf_counter()
        vall = solver.partition(dataset, k, region, stats=stats)
        return vall, stats, time.perf_counter() - start
    finally:
        profiles_mod.topk_order_matrix = saved


def run_comparison():
    """Time the three arms and return the result record (asserting parity)."""
    dataset, k, region, scale = _workload()

    vall_pr1, _stats_pr1, seconds_pr1 = _solve(dataset, k, region, False, pr1_kernel=True)
    vall_scratch, _stats_scratch, seconds_scratch = _solve(dataset, k, region, False)
    vall_inc, stats_inc, seconds_inc = _solve(dataset, k, region, True)

    assert np.array_equal(vall_pr1, vall_scratch), "kernel rework changed V_all"
    assert np.array_equal(vall_scratch, vall_inc), "incremental path changed V_all"

    record = {
        "scale": scale,
        "n_options": dataset.n_options,
        "k": k,
        "n_regions_tested": stats_inc.n_regions_tested,
        "n_splits": stats_inc.n_splits,
        "n_vertices": int(vall_inc.shape[0]),
        "seconds_pr1_kernel": seconds_pr1,
        "seconds_from_scratch": seconds_scratch,
        "seconds_incremental": seconds_inc,
        "speedup_vs_pr1": seconds_pr1 / max(seconds_inc, 1e-9),
        "speedup_vs_scratch": seconds_scratch / max(seconds_inc, 1e-9),
        "vertex_cache_hit_rate": stats_inc.vertex_cache_hit_rate,
        "n_score_batches": stats_inc.n_score_batches,
        "n_score_rows_computed": stats_inc.n_score_rows_computed,
        "n_score_rows_reused": stats_inc.n_score_rows_reused,
        "n_order_rows_computed": stats_inc.n_order_rows_computed,
        "n_order_rows_reused": stats_inc.n_order_rows_reused,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_split_tree_incremental_speedup_and_parity():
    record = run_comparison()
    print(
        f"\n[{record['scale']}] n={record['n_options']} k={record['k']} "
        f"regions={record['n_regions_tested']}: "
        f"pr1 {record['seconds_pr1_kernel']:.2f}s, "
        f"scratch {record['seconds_from_scratch']:.2f}s, "
        f"incremental {record['seconds_incremental']:.2f}s"
    )
    print(
        f"speedup vs pr1 kernel: {record['speedup_vs_pr1']:.2f}x "
        f"(memo alone vs current scratch: {record['speedup_vs_scratch']:.2f}x); "
        f"vertex-score cache hit rate {record['vertex_cache_hit_rate']:.3f}, "
        f"{record['n_score_batches']} kernel launches for "
        f"{record['n_regions_tested']} regions"
    )
    assert record["vertex_cache_hit_rate"] > 0.4, "memo is not being hit"
    minimum = _min_speedup()
    assert record["speedup_vs_pr1"] >= minimum, (
        f"incremental path only {record['speedup_vs_pr1']:.2f}x faster than the "
        f"PR-1 kernel (required {minimum:.2f}x)"
    )


if __name__ == "__main__":
    test_split_tree_incremental_speedup_and_parity()
